//! Shallow (one hidden layer) neural networks with L2 penalisation.
//!
//! The paper's Section III meta models include "shallow neural networks with
//! `l2`-penalization"; this module implements exactly that: a single hidden
//! layer with ReLU activation trained by mini-batch stochastic gradient
//! descent, with a linear output for regression and a sigmoid output for
//! binary classification.

use crate::error::{validate_xy, LearnError};
use crate::traits::{BinaryClassifier, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the shallow networks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Number of hidden units.
    pub hidden_units: usize,
    /// L2 penalty on all weights (biases are not penalised).
    pub l2_penalty: f64,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for weight initialisation and batch shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden_units: 16,
            l2_penalty: 1e-3,
            learning_rate: 0.05,
            epochs: 150,
            batch_size: 32,
            seed: 7,
        }
    }
}

impl MlpConfig {
    /// A small/fast configuration for tests and smoke experiments.
    pub fn fast() -> Self {
        Self {
            hidden_units: 8,
            epochs: 60,
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<(), LearnError> {
        if self.hidden_units == 0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "hidden_units",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.learning_rate <= 0.0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "learning_rate",
                reason: "must be positive".to_string(),
            });
        }
        if self.l2_penalty < 0.0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "l2_penalty",
                reason: "must be non-negative".to_string(),
            });
        }
        if self.batch_size == 0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "batch_size",
                reason: "must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Dense single-hidden-layer network weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Network {
    input_dim: usize,
    hidden_units: usize,
    /// `w1[h][i]`: input `i` → hidden `h`.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    /// `w2[h]`: hidden `h` → output.
    w2: Vec<f64>,
    b2: f64,
}

impl Network {
    fn init(input_dim: usize, hidden_units: usize, rng: &mut StdRng) -> Self {
        // He-style initialisation scaled to the fan-in.
        let scale = (2.0 / input_dim as f64).sqrt();
        let w1 = (0..hidden_units)
            .map(|_| {
                (0..input_dim)
                    .map(|_| rng.gen_range(-scale..scale))
                    .collect()
            })
            .collect();
        let b1 = vec![0.0; hidden_units];
        let out_scale = (2.0 / hidden_units as f64).sqrt();
        let w2 = (0..hidden_units)
            .map(|_| rng.gen_range(-out_scale..out_scale))
            .collect();
        Self {
            input_dim,
            hidden_units,
            w1,
            b1,
            w2,
            b2: 0.0,
        }
    }

    /// Forward pass returning `(hidden activations, pre-sigmoid output)`.
    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(weights, bias)| {
                let z: f64 = weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + bias;
                z.max(0.0) // ReLU
            })
            .collect();
        let out = self.w2.iter().zip(&hidden).map(|(w, h)| w * h).sum::<f64>() + self.b2;
        (hidden, out)
    }

    /// One SGD step on a mini batch. `grad_out` maps (prediction, target) to
    /// dLoss/dOutput for the chosen loss.
    #[allow(clippy::too_many_arguments)]
    fn sgd_step(
        &mut self,
        features: &[Vec<f64>],
        targets: &[f64],
        batch: &[usize],
        learning_rate: f64,
        l2_penalty: f64,
        n_total: f64,
        grad_out: impl Fn(f64, f64) -> f64,
    ) {
        let mut grad_w1 = vec![vec![0.0; self.input_dim]; self.hidden_units];
        let mut grad_b1 = vec![0.0; self.hidden_units];
        let mut grad_w2 = vec![0.0; self.hidden_units];
        let mut grad_b2 = 0.0;
        let batch_n = batch.len() as f64;

        for &idx in batch {
            let x = &features[idx];
            let (hidden, out) = self.forward(x);
            let delta_out = grad_out(out, targets[idx]);
            grad_b2 += delta_out;
            for h in 0..self.hidden_units {
                grad_w2[h] += delta_out * hidden[h];
                if hidden[h] > 0.0 {
                    let delta_hidden = delta_out * self.w2[h];
                    grad_b1[h] += delta_hidden;
                    for (g, v) in grad_w1[h].iter_mut().zip(x) {
                        *g += delta_hidden * v;
                    }
                }
            }
        }

        // L2 penalty is scaled to the full dataset so its strength does not
        // depend on the batch size.
        let penalty_scale = batch_n / n_total;
        for h in 0..self.hidden_units {
            for (w, g) in self.w1[h].iter_mut().zip(&grad_w1[h]) {
                *w -= learning_rate * (g / batch_n + l2_penalty * penalty_scale * *w);
            }
            self.b1[h] -= learning_rate * grad_b1[h] / batch_n;
            self.w2[h] -=
                learning_rate * (grad_w2[h] / batch_n + l2_penalty * penalty_scale * self.w2[h]);
        }
        self.b2 -= learning_rate * grad_b2 / batch_n;
    }

    fn weight_norm(&self) -> f64 {
        let hidden: f64 = self
            .w1
            .iter()
            .flat_map(|row| row.iter())
            .map(|w| w * w)
            .sum();
        let out: f64 = self.w2.iter().map(|w| w * w).sum();
        hidden + out
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

fn train(
    features: &[Vec<f64>],
    targets: &[f64],
    config: MlpConfig,
    grad_out: impl Fn(f64, f64) -> f64 + Copy,
) -> Result<Network, LearnError> {
    let dim = validate_xy(features, targets)?;
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut network = Network::init(dim, config.hidden_units, &mut rng);
    let n_total = features.len() as f64;
    let mut order: Vec<usize> = (0..features.len()).collect();

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for batch in order.chunks(config.batch_size) {
            network.sgd_step(
                features,
                targets,
                batch,
                config.learning_rate,
                config.l2_penalty,
                n_total,
                grad_out,
            );
        }
    }
    Ok(network)
}

/// Shallow MLP for regression (linear output, squared loss).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpRegressor {
    network: Network,
    config: MlpConfig,
}

impl MlpRegressor {
    /// Trains the network with mini-batch SGD on the squared loss.
    ///
    /// # Errors
    ///
    /// Returns a [`LearnError`] for inconsistent data shapes or invalid
    /// hyper-parameters.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        config: MlpConfig,
    ) -> Result<Self, LearnError> {
        let network = train(features, targets, config, |out, target| out - target)?;
        Ok(Self { network, config })
    }

    /// The configuration the network was trained with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Squared L2 norm of all weights (exposed for the regularisation tests).
    pub fn weight_norm(&self) -> f64 {
        self.network.weight_norm()
    }
}

impl Regressor for MlpRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.network.input_dim,
            "feature dimension mismatch"
        );
        self.network.forward(features).1
    }
}

/// Shallow MLP for binary classification (sigmoid output, log loss).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpClassifier {
    network: Network,
    config: MlpConfig,
}

impl MlpClassifier {
    /// Trains the network with mini-batch SGD on the logistic loss.
    ///
    /// # Errors
    ///
    /// Returns a [`LearnError`] for inconsistent data shapes, invalid
    /// hyper-parameters, or single-class training data.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[bool],
        config: MlpConfig,
    ) -> Result<Self, LearnError> {
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            return Err(LearnError::SingleClassTraining);
        }
        let targets: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        // dLogLoss/dOut with a sigmoid output collapses to sigmoid(out) - target.
        let network = train(features, &targets, config, |out, target| {
            sigmoid(out) - target
        })?;
        Ok(Self { network, config })
    }

    /// The configuration the network was trained with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Squared L2 norm of all weights (exposed for the regularisation tests).
    pub fn weight_norm(&self) -> f64 {
        self.network.weight_norm()
    }
}

impl BinaryClassifier for MlpClassifier {
    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.network.input_dim,
            "feature dimension mismatch"
        );
        sigmoid(self.network.forward(features).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressor_learns_linear_function() {
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 80.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] - 0.5).collect();
        let model = MlpRegressor::fit(&x, &y, MlpConfig::default()).unwrap();
        let mse: f64 = x
            .iter()
            .zip(&y)
            .map(|(r, t)| (model.predict_one(r) - t).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.02, "mse was {mse}");
    }

    #[test]
    fn classifier_learns_threshold() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0 - 0.5]).collect();
        let labels: Vec<bool> = x.iter().map(|r| r[0] > 0.0).collect();
        let model = MlpClassifier::fit(&x, &labels, MlpConfig::default()).unwrap();
        let correct = x
            .iter()
            .zip(&labels)
            .filter(|(row, &l)| model.predict_one(row) == l)
            .count();
        assert!(correct as f64 / labels.len() as f64 > 0.85);
        for row in &x {
            let p = model.predict_proba_one(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn stronger_penalty_gives_smaller_weights() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i as f64 * 0.37).sin(), i as f64 / 60.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 3.0 + r[1]).collect();
        let weak = MlpRegressor::fit(
            &x,
            &y,
            MlpConfig {
                l2_penalty: 0.0,
                ..MlpConfig::fast()
            },
        )
        .unwrap();
        let strong = MlpRegressor::fit(
            &x,
            &y,
            MlpConfig {
                l2_penalty: 1.0,
                ..MlpConfig::fast()
            },
        )
        .unwrap();
        assert!(strong.weight_norm() < weak.weight_norm());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        let a = MlpRegressor::fit(&x, &y, MlpConfig::fast()).unwrap();
        let b = MlpRegressor::fit(&x, &y, MlpConfig::fast()).unwrap();
        assert_eq!(a.predict_one(&[0.3]), b.predict_one(&[0.3]));
    }

    #[test]
    fn invalid_configs_rejected() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        for config in [
            MlpConfig {
                hidden_units: 0,
                ..MlpConfig::default()
            },
            MlpConfig {
                learning_rate: 0.0,
                ..MlpConfig::default()
            },
            MlpConfig {
                l2_penalty: -0.1,
                ..MlpConfig::default()
            },
            MlpConfig {
                batch_size: 0,
                ..MlpConfig::default()
            },
        ] {
            assert!(MlpRegressor::fit(&x, &y, config).is_err());
        }
        assert_eq!(
            MlpClassifier::fit(&x, &[true, true], MlpConfig::fast()),
            Err(LearnError::SingleClassTraining)
        );
    }
}
