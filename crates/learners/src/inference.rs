//! Serializable inference handles over fitted meta models.
//!
//! Training and serving have different shapes: training wants the concrete
//! model types with their `fit` signatures, while a serving path (the
//! streaming engine, a checkpoint file, a worker fleet) wants one opaque,
//! serializable handle that scales a raw metric vector and produces the two
//! meta outputs. [`MetaPredictor`] is that handle: it bundles the
//! [`StandardScaler`] fitted on the training split with one
//! [`FittedClassifier`] and one [`FittedRegressor`], so a raw (unscaled)
//! feature row goes in and calibrated meta-classification scores /
//! meta-regression IoU estimates come out.

use crate::boosting::{GradientBoostingClassifier, GradientBoostingRegressor};
use crate::dataset::StandardScaler;
use crate::error::LearnError;
use crate::linear::{LinearRegression, RidgeRegression};
use crate::logistic::LogisticRegression;
use crate::mlp::{MlpClassifier, MlpRegressor};
use crate::traits::{BinaryClassifier, Regressor};
use metaseg_data::container;
use serde::{Deserialize, Serialize};

/// A fitted meta-classification model of any supported family.
///
/// The enum (rather than a trait object) keeps the handle `Serialize` +
/// `Clone` and lets callers match on the family when reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FittedClassifier {
    /// Gradient-boosted classification trees.
    Boosting(GradientBoostingClassifier),
    /// Shallow neural network with L2 penalty.
    Mlp(MlpClassifier),
    /// Logistic regression.
    Logistic(LogisticRegression),
}

impl FittedClassifier {
    /// Short name of the model family, for reports.
    pub fn family(&self) -> &'static str {
        match self {
            FittedClassifier::Boosting(_) => "gradient boosting",
            FittedClassifier::Mlp(_) => "neural network (L2)",
            FittedClassifier::Logistic(_) => "logistic regression",
        }
    }
}

impl BinaryClassifier for FittedClassifier {
    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        match self {
            FittedClassifier::Boosting(m) => m.predict_proba_one(features),
            FittedClassifier::Mlp(m) => m.predict_proba_one(features),
            FittedClassifier::Logistic(m) => m.predict_proba_one(features),
        }
    }
}

/// A fitted meta-regression model of any supported family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FittedRegressor {
    /// Gradient-boosted regression trees.
    Boosting(GradientBoostingRegressor),
    /// Shallow neural network with L2 penalty.
    Mlp(MlpRegressor),
    /// Ordinary least squares.
    Linear(LinearRegression),
    /// Ridge-penalised least squares.
    Ridge(RidgeRegression),
}

impl FittedRegressor {
    /// Short name of the model family, for reports.
    pub fn family(&self) -> &'static str {
        match self {
            FittedRegressor::Boosting(_) => "gradient boosting",
            FittedRegressor::Mlp(_) => "neural network (L2)",
            FittedRegressor::Linear(_) => "linear regression",
            FittedRegressor::Ridge(_) => "ridge regression",
        }
    }
}

impl Regressor for FittedRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        match self {
            FittedRegressor::Boosting(m) => m.predict_one(features),
            FittedRegressor::Mlp(m) => m.predict_one(features),
            FittedRegressor::Linear(m) => m.predict_one(features),
            FittedRegressor::Ridge(m) => m.predict_one(features),
        }
    }
}

/// A complete, serializable meta-model inference handle: feature scaler plus
/// fitted classifier and regressor.
///
/// The handle consumes **raw** (unscaled) metric rows; standardisation with
/// the training-split statistics happens inside, so online consumers cannot
/// accidentally skip it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaPredictor {
    scaler: StandardScaler,
    classifier: FittedClassifier,
    regressor: FittedRegressor,
}

impl MetaPredictor {
    /// Bundles a fitted scaler, classifier and regressor into one handle.
    pub fn new(
        scaler: StandardScaler,
        classifier: FittedClassifier,
        regressor: FittedRegressor,
    ) -> Self {
        Self {
            scaler,
            classifier,
            regressor,
        }
    }

    /// Dimensionality of the raw feature rows the handle expects.
    pub fn feature_dim(&self) -> usize {
        self.scaler.feature_dim()
    }

    /// The classifier half of the handle.
    pub fn classifier(&self) -> &FittedClassifier {
        &self.classifier
    }

    /// The regressor half of the handle.
    pub fn regressor(&self) -> &FittedRegressor {
        &self.regressor
    }

    /// Meta-classification score (probability of `IoU > 0`) for one raw row.
    ///
    /// # Panics
    ///
    /// Panics if the row does not match [`MetaPredictor::feature_dim`].
    pub fn score_one(&self, raw: &[f64]) -> f64 {
        self.classifier
            .predict_proba_one(&self.scaler.transform_row(raw))
    }

    /// Meta-regression IoU estimate for one raw row, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the row does not match [`MetaPredictor::feature_dim`].
    pub fn predict_iou_one(&self, raw: &[f64]) -> f64 {
        self.regressor
            .predict_one(&self.scaler.transform_row(raw))
            .clamp(0.0, 1.0)
    }

    /// Both meta outputs for one raw row: `(score, predicted IoU)`.
    ///
    /// Scales the row once and feeds both models, so the online hot path
    /// pays for standardisation only once per segment.
    pub fn predict_one(&self, raw: &[f64]) -> (f64, f64) {
        let scaled = self.scaler.transform_row(raw);
        (
            self.classifier.predict_proba_one(&scaled),
            self.regressor.predict_one(&scaled).clamp(0.0, 1.0),
        )
    }

    /// Meta-classification scores for a batch of raw rows.
    pub fn score(&self, raw: &[Vec<f64>]) -> Vec<f64> {
        raw.iter().map(|row| self.score_one(row)).collect()
    }

    /// Meta-regression IoU estimates for a batch of raw rows.
    pub fn predict_iou(&self, raw: &[Vec<f64>]) -> Vec<f64> {
        raw.iter().map(|row| self.predict_iou_one(row)).collect()
    }

    /// Serializes the handle to compact JSON — the checkpoint format consumed
    /// by model registries and worker fleets. [`MetaPredictor::from_json`]
    /// inverts it exactly: the round-trip reproduces bit-identical
    /// predictions (floats are rendered in shortest-round-trip form).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("document model serialization is infallible")
    }

    /// Reconstructs a handle from its [`MetaPredictor::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::InvalidModel`] when the text is not valid JSON
    /// or does not describe a predictor (a serving layer must be able to
    /// reject a corrupt checkpoint without panicking).
    pub fn from_json(json: &str) -> Result<Self, LearnError> {
        serde_json::from_str(json).map_err(|e| LearnError::InvalidModel(e.to_string()))
    }

    /// Serializes the handle as a binary checkpoint container
    /// (`metaseg_data::container`, kind `Checkpoint`): the [`Self::to_json`]
    /// document wrapped in a CRC-32-checksummed, optionally compressed chunk.
    ///
    /// The container carries exactly the JSON text, so the round-trip through
    /// [`Self::from_container_bytes`] reproduces bit-identical predictions —
    /// same guarantee as the JSON path, plus corruption detection.
    pub fn to_container_bytes(&self) -> Vec<u8> {
        container::write_checkpoint(&self.to_json(), true)
            .expect("checkpoint documents are far below the container chunk cap")
    }

    /// Reconstructs a handle from a binary checkpoint container.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::InvalidModel`] when the container is truncated,
    /// corrupt (CRC mismatch), of the wrong kind or version, or when the
    /// embedded JSON does not describe a predictor.
    pub fn from_container_bytes(bytes: &[u8]) -> Result<Self, LearnError> {
        let json = container::read_checkpoint(bytes)
            .map_err(|e| LearnError::InvalidModel(format!("checkpoint container: {e}")))?;
        Self::from_json(&json)
    }

    /// Reconstructs a handle from either checkpoint form, sniffing the magic:
    /// binary containers route through [`Self::from_container_bytes`], any
    /// other bytes are treated as UTF-8 JSON ([`Self::from_json`]).
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::InvalidModel`] when the bytes decode as neither.
    pub fn from_checkpoint_bytes(bytes: &[u8]) -> Result<Self, LearnError> {
        if container::is_container(bytes) {
            Self::from_container_bytes(bytes)
        } else {
            let json = std::str::from_utf8(bytes)
                .map_err(|e| LearnError::InvalidModel(format!("checkpoint is not UTF-8: {e}")))?;
            Self::from_json(json)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boosting::BoostingConfig;
    use crate::logistic::LogisticConfig;

    fn toy_training() -> (Vec<Vec<f64>>, Vec<bool>, Vec<f64>) {
        let features: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 / 40.0, (40 - i) as f64 / 40.0])
            .collect();
        let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let targets: Vec<f64> = (0..40).map(|i| i as f64 / 40.0).collect();
        (features, labels, targets)
    }

    fn toy_predictor() -> MetaPredictor {
        let (features, labels, targets) = toy_training();
        let scaler = StandardScaler::fit(&features).unwrap();
        let scaled = scaler.transform(&features);
        let classifier = FittedClassifier::Logistic(
            LogisticRegression::fit(&scaled, &labels, LogisticConfig::default()).unwrap(),
        );
        let regressor = FittedRegressor::Boosting(
            GradientBoostingRegressor::fit(&scaled, &targets, BoostingConfig::default()).unwrap(),
        );
        MetaPredictor::new(scaler, classifier, regressor)
    }

    #[test]
    fn predictor_scales_internally_and_matches_manual_pipeline() {
        let predictor = toy_predictor();
        assert_eq!(predictor.feature_dim(), 2);
        let raw = vec![0.9, 0.1];
        let (score, iou) = predictor.predict_one(&raw);
        assert_eq!(score, predictor.score_one(&raw));
        assert_eq!(iou, predictor.predict_iou_one(&raw));
        assert!((0.0..=1.0).contains(&score));
        assert!((0.0..=1.0).contains(&iou));
        // High-feature rows were the positive/high-IoU half of the toy data.
        assert!(predictor.score_one(&[0.95, 0.05]) > predictor.score_one(&[0.05, 0.95]));
        assert!(
            predictor.predict_iou_one(&[0.95, 0.05]) > predictor.predict_iou_one(&[0.05, 0.95])
        );
    }

    #[test]
    fn batch_helpers_delegate_row_wise() {
        let predictor = toy_predictor();
        let rows = vec![vec![0.2, 0.8], vec![0.8, 0.2]];
        assert_eq!(
            predictor.score(&rows),
            vec![predictor.score_one(&rows[0]), predictor.score_one(&rows[1])]
        );
        assert_eq!(
            predictor.predict_iou(&rows),
            vec![
                predictor.predict_iou_one(&rows[0]),
                predictor.predict_iou_one(&rows[1])
            ]
        );
    }

    #[test]
    fn handles_serialize_to_json() {
        let predictor = toy_predictor();
        let json = serde_json::to_string(&predictor).unwrap();
        assert!(json.contains("scaler"));
        assert!(json.contains("classifier"));
        assert!(json.contains("regressor"));
        assert_eq!(predictor.classifier().family(), "logistic regression");
        assert_eq!(predictor.regressor().family(), "gradient boosting");
    }

    #[test]
    fn json_roundtrip_reproduces_bit_identical_predictions() {
        let predictor = toy_predictor();
        let restored = MetaPredictor::from_json(&predictor.to_json()).unwrap();
        assert_eq!(restored, predictor);
        for row in [[0.9, 0.1], [0.05, 0.95], [0.5, 0.5]] {
            assert_eq!(restored.predict_one(&row), predictor.predict_one(&row));
        }
        // Double round-trip is a fixed point.
        assert_eq!(restored.to_json(), predictor.to_json());
    }

    #[test]
    fn container_checkpoint_roundtrip_is_bit_identical_to_the_json_path() {
        let predictor = toy_predictor();
        let bytes = predictor.to_container_bytes();
        let from_container = MetaPredictor::from_container_bytes(&bytes).unwrap();
        let from_json = MetaPredictor::from_json(&predictor.to_json()).unwrap();
        assert_eq!(from_container, predictor);
        assert_eq!(from_container, from_json);
        for row in [[0.9, 0.1], [0.05, 0.95], [0.5, 0.5], [1.7, -0.3]] {
            let (score, iou) = predictor.predict_one(&row);
            assert_eq!(from_container.predict_one(&row), (score, iou));
            assert_eq!(from_json.predict_one(&row), (score, iou));
        }
        // The container embeds exactly the JSON document.
        assert_eq!(from_container.to_json(), predictor.to_json());
    }

    #[test]
    fn checkpoint_sniffing_routes_both_formats() {
        let predictor = toy_predictor();
        let json = predictor.to_json();
        let restored = MetaPredictor::from_checkpoint_bytes(json.as_bytes()).unwrap();
        assert_eq!(restored, predictor);
        let restored =
            MetaPredictor::from_checkpoint_bytes(&predictor.to_container_bytes()).unwrap();
        assert_eq!(restored, predictor);
    }

    #[test]
    fn corrupt_container_checkpoints_are_rejected_not_panicked_on() {
        let predictor = toy_predictor();
        let bytes = predictor.to_container_bytes();
        // Corrupt the chunk body: a typed error mentioning the container.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x20;
        let err = MetaPredictor::from_container_bytes(&corrupt).unwrap_err();
        match err {
            LearnError::InvalidModel(msg) => assert!(msg.contains("checkpoint container")),
            other => panic!("unexpected error: {other:?}"),
        }
        // Truncation at every boundary is a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(MetaPredictor::from_checkpoint_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_not_panicked_on() {
        for bad in ["", "not json", "{}", "[1,2,3]", "{\"scaler\": 3}"] {
            let err = MetaPredictor::from_json(bad).unwrap_err();
            assert!(matches!(err, LearnError::InvalidModel(_)), "for {bad:?}");
        }
    }

    #[test]
    fn families_are_named() {
        let (features, labels, targets) = toy_training();
        let mlp_c = FittedClassifier::Mlp(
            MlpClassifier::fit(&features, &labels, crate::mlp::MlpConfig::default()).unwrap(),
        );
        assert_eq!(mlp_c.family(), "neural network (L2)");
        let boost_c = FittedClassifier::Boosting(
            GradientBoostingClassifier::fit(&features, &labels, BoostingConfig::default()).unwrap(),
        );
        assert_eq!(boost_c.family(), "gradient boosting");
        let mlp_r = FittedRegressor::Mlp(
            MlpRegressor::fit(&features, &targets, crate::mlp::MlpConfig::default()).unwrap(),
        );
        assert_eq!(mlp_r.family(), "neural network (L2)");
        let lin = FittedRegressor::Linear(LinearRegression::fit(&features, &targets).unwrap());
        assert_eq!(lin.family(), "linear regression");
        let ridge = FittedRegressor::Ridge(RidgeRegression::fit(&features, &targets, 1.0).unwrap());
        assert_eq!(ridge.family(), "ridge regression");
        // The enum handles predict like their inner models.
        assert_eq!(lin.predict_one(&features[3]), {
            let inner = LinearRegression::fit(&features, &targets).unwrap();
            inner.predict_one(&features[3])
        });
    }
}
