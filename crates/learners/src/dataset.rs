//! Tabular datasets, feature standardisation and train/test splitting.

use crate::error::{validate_xy, LearnError};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A tabular dataset of feature rows and real-valued targets.
///
/// This is the "structured dataset" `M` of the paper: one row of aggregated
/// segment metrics per predicted segment, with the segment's IoU as target.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TabularDataset {
    /// Feature rows; all rows share the same dimensionality.
    pub features: Vec<Vec<f64>>,
    /// One target per feature row.
    pub targets: Vec<f64>,
}

impl TabularDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from parallel feature/target vectors.
    ///
    /// # Errors
    ///
    /// Returns a [`LearnError`] if the shapes are inconsistent.
    pub fn from_parts(features: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self, LearnError> {
        validate_xy(&features, &targets)?;
        Ok(Self { features, targets })
    }

    /// Appends one sample.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        self.features.push(features);
        self.targets.push(target);
    }

    /// Appends all samples of `other`.
    pub fn extend_from(&mut self, other: &TabularDataset) {
        self.features.extend(other.features.iter().cloned());
        self.targets.extend(other.targets.iter().cloned());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Feature dimensionality (0 for an empty dataset).
    pub fn feature_dim(&self) -> usize {
        self.features.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Binary targets derived by thresholding: `target > threshold`.
    ///
    /// With `threshold = 0.0` this is exactly the paper's meta-classification
    /// label `IoU > 0`.
    pub fn binary_targets(&self, threshold: f64) -> Vec<bool> {
        self.targets.iter().map(|t| *t > threshold).collect()
    }

    /// Returns the sub-dataset at the given indices (indices may repeat).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> TabularDataset {
        TabularDataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            targets: indices.iter().map(|&i| self.targets[i]).collect(),
        }
    }

    /// Randomly shuffles the samples in place.
    pub fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let features = order.iter().map(|&i| self.features[i].clone()).collect();
        let targets = order.iter().map(|&i| self.targets[i]).collect();
        self.features = features;
        self.targets = targets;
    }
}

/// Splits a dataset into a training and a test part.
///
/// `train_fraction` of the samples (rounded) go to the training set after a
/// random shuffle driven by `rng`.
///
/// # Panics
///
/// Panics if `train_fraction` is not within `[0, 1]`.
pub fn train_test_split<R: Rng>(
    dataset: &TabularDataset,
    train_fraction: f64,
    rng: &mut R,
) -> (TabularDataset, TabularDataset) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train_fraction must be in [0, 1]"
    );
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.shuffle(rng);
    let cut = (dataset.len() as f64 * train_fraction).round() as usize;
    let train_idx = &order[..cut.min(dataset.len())];
    let test_idx = &order[cut.min(dataset.len())..];
    (dataset.subset(train_idx), dataset.subset(test_idx))
}

/// Per-feature standardisation to zero mean and unit variance.
///
/// The meta models of the paper (in particular the `l2`-penalised ones) are
/// trained on standardised metrics; the scaler is fit on the training split
/// and applied to the test split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on a feature matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::EmptyTrainingSet`] for an empty matrix.
    pub fn fit(features: &[Vec<f64>]) -> Result<Self, LearnError> {
        if features.is_empty() || features[0].is_empty() {
            return Err(LearnError::EmptyTrainingSet);
        }
        let dim = features[0].len();
        let n = features.len() as f64;
        let mut means = vec![0.0; dim];
        for row in features {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in features {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            // Constant features keep their value; avoid division by zero.
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Ok(Self { means, stds })
    }

    /// Number of features the scaler was fit on.
    pub fn feature_dim(&self) -> usize {
        self.means.len()
    }

    /// Transforms a single feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row has the wrong dimensionality.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "feature dimension mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transforms a batch of feature rows.
    pub fn transform(&self, features: &[Vec<f64>]) -> Vec<Vec<f64>> {
        features.iter().map(|r| self.transform_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy_dataset(n: usize) -> TabularDataset {
        let features = (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let targets = (0..n).map(|i| i as f64 / n as f64).collect();
        TabularDataset::from_parts(features, targets).unwrap()
    }

    #[test]
    fn from_parts_validates() {
        assert!(TabularDataset::from_parts(vec![vec![1.0]], vec![1.0, 2.0]).is_err());
        assert!(TabularDataset::from_parts(vec![vec![1.0]], vec![1.0]).is_ok());
    }

    #[test]
    fn push_extend_subset() {
        let mut ds = TabularDataset::new();
        ds.push(vec![1.0], 0.5);
        ds.push(vec![2.0], 0.0);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.feature_dim(), 1);
        let other = toy_dataset(3);
        let mut merged = other.clone();
        merged.extend_from(&other);
        assert_eq!(merged.len(), 6);
        let sub = other.subset(&[2, 0]);
        assert_eq!(sub.targets, vec![other.targets[2], other.targets[0]]);
    }

    #[test]
    fn binary_targets_threshold_at_zero() {
        let ds =
            TabularDataset::from_parts(vec![vec![0.0], vec![0.0], vec![0.0]], vec![0.0, 0.3, 0.9])
                .unwrap();
        assert_eq!(ds.binary_targets(0.0), vec![false, true, true]);
        assert_eq!(ds.binary_targets(0.5), vec![false, false, true]);
    }

    #[test]
    fn split_covers_all_samples() {
        let ds = toy_dataset(10);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = train_test_split(&ds, 0.8, &mut rng);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        let mut all_targets: Vec<f64> =
            train.targets.iter().chain(&test.targets).copied().collect();
        all_targets.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expected = ds.targets.clone();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all_targets, expected);
    }

    #[test]
    fn scaler_standardises_columns() {
        let features = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let scaler = StandardScaler::fit(&features).unwrap();
        let transformed = scaler.transform(&features);
        for col in 0..2 {
            let mean: f64 = transformed.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 = transformed.iter().map(|r| r[col].powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scaler_handles_constant_features() {
        let features = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaler = StandardScaler::fit(&features).unwrap();
        let transformed = scaler.transform(&features);
        assert!(transformed.iter().all(|r| r[0].abs() < 1e-12));
        assert!(StandardScaler::fit(&[]).is_err());
    }

    proptest! {
        #[test]
        fn prop_shuffle_preserves_multiset(seed in 0u64..200, n in 1usize..30) {
            let mut ds = toy_dataset(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let before: Vec<f64> = {
                let mut t = ds.targets.clone();
                t.sort_by(|a, b| a.partial_cmp(b).unwrap());
                t
            };
            ds.shuffle(&mut rng);
            let mut after = ds.targets.clone();
            after.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(before, after);
            // feature/target pairing stays intact
            for (row, t) in ds.features.iter().zip(&ds.targets) {
                prop_assert!((row[0] / n as f64 - t).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_split_sizes(seed in 0u64..200, n in 1usize..50, frac in 0.0f64..1.0) {
            let ds = toy_dataset(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let (train, test) = train_test_split(&ds, frac, &mut rng);
            prop_assert_eq!(train.len() + test.len(), n);
        }
    }
}
