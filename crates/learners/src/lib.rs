//! # metaseg-learners
//!
//! From-scratch machine-learning substrate for the MetaSeg reproduction.
//!
//! The paper trains four families of meta models on the structured dataset of
//! segment metrics: linear/logistic (ridge-penalised) models, gradient
//! boosting, and shallow neural networks with `l2`-penalisation, plus SMOTE
//! for-regression data augmentation. All of them are implemented here on top
//! of plain `Vec<f64>` tabular data — no external ML framework.
//!
//! * [`TabularDataset`], [`StandardScaler`], [`train_test_split`] — data plumbing,
//! * [`LinearRegression`] / [`RidgeRegression`] — closed-form least squares,
//! * [`LogisticRegression`] — gradient-descent logistic model with optional L2,
//! * [`GradientBoostingRegressor`] / [`GradientBoostingClassifier`] — boosted
//!   CART trees,
//! * [`MlpRegressor`] / [`MlpClassifier`] — one-hidden-layer networks with L2,
//! * [`smote_regression`] — SmoteR augmentation for continuous targets,
//! * the [`Regressor`] and [`BinaryClassifier`] traits that the MetaSeg
//!   pipeline is generic over,
//! * [`MetaPredictor`] with [`FittedClassifier`] / [`FittedRegressor`] — the
//!   serializable inference handle (scaler + fitted models) that online
//!   consumers such as the streaming engine carry around.
//!
//! ```
//! use metaseg_learners::{LinearRegression, Regressor};
//!
//! let features = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
//! let targets = vec![1.0, 3.0, 5.0, 7.0];
//! let model = LinearRegression::fit(&features, &targets).unwrap();
//! let prediction = model.predict_one(&[4.0]);
//! assert!((prediction - 9.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boosting;
mod dataset;
mod error;
mod inference;
mod linear;
mod logistic;
mod matrix;
mod mlp;
mod smote;
mod traits;
mod tree;

pub use boosting::{BoostingConfig, GradientBoostingClassifier, GradientBoostingRegressor};
pub use dataset::{train_test_split, StandardScaler, TabularDataset};
pub use error::LearnError;
pub use inference::{FittedClassifier, FittedRegressor, MetaPredictor};
pub use linear::{LinearRegression, RidgeRegression};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use matrix::{solve_linear_system, Matrix};
pub use mlp::{MlpClassifier, MlpConfig, MlpRegressor};
pub use smote::{smote_regression, SmoteConfig};
pub use traits::{BinaryClassifier, Regressor};
pub use tree::{RegressionTree, TreeConfig};
