//! CART-style regression trees (the weak learner of gradient boosting).

use crate::error::{validate_xy, LearnError};
use crate::traits::Regressor;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`RegressionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth of the tree (a depth of 0 is a single leaf).
    pub max_depth: usize,
    /// Minimum number of samples required in each child after a split.
    pub min_samples_leaf: usize,
    /// Minimum decrease of the summed squared error required to accept a split.
    pub min_impurity_decrease: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 3,
            min_samples_leaf: 2,
            min_impurity_decrease: 1e-9,
        }
    }
}

/// A node of the regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A binary regression tree grown by recursive variance-reduction splitting.
///
/// ```
/// use metaseg_learners::{RegressionTree, Regressor, TreeConfig};
///
/// let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
/// let y = vec![0.0, 0.0, 1.0, 1.0];
/// let tree = RegressionTree::fit(&x, &y, TreeConfig::default()).unwrap();
/// assert!(tree.predict_one(&[0.5]) < 0.5);
/// assert!(tree.predict_one(&[10.5]) > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    root: Node,
    config: TreeConfig,
    feature_dim: usize,
}

impl RegressionTree {
    /// Grows a tree on the given data.
    ///
    /// # Errors
    ///
    /// Returns a [`LearnError`] for inconsistent data shapes or a zero
    /// `min_samples_leaf`.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        config: TreeConfig,
    ) -> Result<Self, LearnError> {
        let dim = validate_xy(features, targets)?;
        if config.min_samples_leaf == 0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "min_samples_leaf",
                reason: "must be at least 1".to_string(),
            });
        }
        let indices: Vec<usize> = (0..targets.len()).collect();
        let root = grow(features, targets, &indices, &config, 0);
        Ok(Self {
            root,
            config,
            feature_dim: dim,
        })
    }

    /// The configuration the tree was grown with.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Number of leaves of the tree.
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

impl Regressor for RegressionTree {
    fn predict_one(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.feature_dim,
            "feature dimension mismatch"
        );
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

fn mean_of(targets: &[f64], indices: &[usize]) -> f64 {
    indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64
}

fn sse_of(targets: &[f64], indices: &[usize]) -> f64 {
    let mean = mean_of(targets, indices);
    indices.iter().map(|&i| (targets[i] - mean).powi(2)).sum()
}

fn grow(
    features: &[Vec<f64>],
    targets: &[f64],
    indices: &[usize],
    config: &TreeConfig,
    depth: usize,
) -> Node {
    let leaf = Node::Leaf {
        value: mean_of(targets, indices),
    };
    if depth >= config.max_depth || indices.len() < 2 * config.min_samples_leaf {
        return leaf;
    }
    let parent_sse = sse_of(targets, indices);
    if parent_sse <= config.min_impurity_decrease {
        return leaf;
    }

    let dim = features[0].len();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, child sse sum)

    for feature in 0..dim {
        // Sort indices by this feature and scan all split positions.
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| {
            features[a][feature]
                .partial_cmp(&features[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Prefix sums for O(n) SSE evaluation at every split point.
        let values: Vec<f64> = order.iter().map(|&i| targets[i]).collect();
        let mut prefix_sum = vec![0.0; values.len() + 1];
        let mut prefix_sq = vec![0.0; values.len() + 1];
        for (i, v) in values.iter().enumerate() {
            prefix_sum[i + 1] = prefix_sum[i] + v;
            prefix_sq[i + 1] = prefix_sq[i] + v * v;
        }
        let total = values.len();

        for split in config.min_samples_leaf..=(total - config.min_samples_leaf) {
            // Don't split between equal feature values.
            let left_value = features[order[split - 1]][feature];
            let right_value = features[order[split]][feature];
            if (right_value - left_value).abs() < 1e-15 {
                continue;
            }
            let left_n = split as f64;
            let right_n = (total - split) as f64;
            let left_sum = prefix_sum[split];
            let right_sum = prefix_sum[total] - left_sum;
            let left_sq = prefix_sq[split];
            let right_sq = prefix_sq[total] - left_sq;
            let left_sse = left_sq - left_sum * left_sum / left_n;
            let right_sse = right_sq - right_sum * right_sum / right_n;
            let child_sse = left_sse + right_sse;
            if best.is_none_or(|(_, _, b)| child_sse < b) {
                let threshold = (left_value + right_value) / 2.0;
                best = Some((feature, threshold, child_sse));
            }
        }
    }

    match best {
        Some((feature, threshold, child_sse))
            if parent_sse - child_sse >= config.min_impurity_decrease =>
        {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| features[i][feature] <= threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                return leaf;
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(features, targets, &left_idx, config, depth + 1)),
                right: Box::new(grow(features, targets, &right_idx, config, depth + 1)),
            }
        }
        _ => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_leaf_predicts_mean() {
        let config = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1.0, 2.0, 3.0];
        let tree = RegressionTree::fit(&x, &y, config).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.depth(), 0);
        assert!((tree.predict_one(&[5.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn splits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default()).unwrap();
        for (row, target) in x.iter().zip(&y) {
            assert!((tree.predict_one(row) - target).abs() < 1e-9);
        }
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        for depth in 1..5 {
            let config = TreeConfig {
                max_depth: depth,
                ..TreeConfig::default()
            };
            let tree = RegressionTree::fit(&x, &y, config).unwrap();
            assert!(tree.depth() <= depth);
            assert!(tree.leaf_count() <= 1 << depth);
        }
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![4.2; 10];
        let tree = RegressionTree::fit(&x, &y, TreeConfig::default()).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert!((tree.predict_one(&[3.0]) - 4.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_config() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        let config = TreeConfig {
            min_samples_leaf: 0,
            ..TreeConfig::default()
        };
        assert!(RegressionTree::fit(&x, &y, config).is_err());
    }

    proptest! {
        /// Tree predictions always lie within the range of the training targets.
        #[test]
        fn prop_predictions_within_target_range(seed in 0u64..200) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let x: Vec<Vec<f64>> = (0..40)
                .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
                .collect();
            let y: Vec<f64> = x.iter().map(|r| r[0].sin() + rng.gen_range(-0.2..0.2)).collect();
            let tree = RegressionTree::fit(&x, &y, TreeConfig { max_depth: 4, ..TreeConfig::default() }).unwrap();
            let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for _ in 0..20 {
                let probe = vec![rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)];
                let p = tree.predict_one(&probe);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        }

        /// Deeper trees never have a larger training error than depth-0 trees.
        #[test]
        fn prop_deeper_trees_fit_no_worse(seed in 0u64..100) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let x: Vec<Vec<f64>> = (0..30).map(|_| vec![rng.gen_range(0.0..1.0)]).collect();
            let y: Vec<f64> = x.iter().map(|r| r[0] * 3.0 + rng.gen_range(-0.1..0.1)).collect();
            let sse = |depth: usize| {
                let config = TreeConfig { max_depth: depth, ..TreeConfig::default() };
                let tree = RegressionTree::fit(&x, &y, config).unwrap();
                x.iter().zip(&y).map(|(r, t)| (tree.predict_one(r) - t).powi(2)).sum::<f64>()
            };
            prop_assert!(sse(3) <= sse(0) + 1e-9);
        }
    }
}
