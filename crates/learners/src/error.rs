//! Error type for model fitting.

use std::fmt;

/// Errors produced when fitting or applying a model.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// The training set is empty.
    EmptyTrainingSet,
    /// Features and targets have different lengths.
    LengthMismatch {
        /// Number of feature rows.
        features: usize,
        /// Number of targets.
        targets: usize,
    },
    /// Feature rows have inconsistent dimensionality.
    InconsistentFeatureDim {
        /// Dimensionality of the first row.
        expected: usize,
        /// Dimensionality of the offending row.
        found: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// The normal-equation system is singular and cannot be solved.
    SingularSystem,
    /// A hyper-parameter has an invalid value.
    InvalidHyperParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human readable description of the violation.
        reason: String,
    },
    /// Binary classification training requires both classes to be present.
    SingleClassTraining,
    /// A serialized model handle could not be decoded.
    InvalidModel(String),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::EmptyTrainingSet => write!(f, "training set must not be empty"),
            LearnError::LengthMismatch { features, targets } => write!(
                f,
                "feature rows ({features}) and targets ({targets}) have different lengths"
            ),
            LearnError::InconsistentFeatureDim {
                expected,
                found,
                row,
            } => write!(
                f,
                "feature row {row} has dimension {found}, expected {expected}"
            ),
            LearnError::SingularSystem => {
                write!(
                    f,
                    "normal equations are singular; try adding regularisation"
                )
            }
            LearnError::InvalidHyperParameter { name, reason } => {
                write!(f, "invalid hyper-parameter `{name}`: {reason}")
            }
            LearnError::SingleClassTraining => {
                write!(
                    f,
                    "binary classifier training requires both classes present"
                )
            }
            LearnError::InvalidModel(reason) => {
                write!(f, "invalid serialized model: {reason}")
            }
        }
    }
}

impl std::error::Error for LearnError {}

/// Validates a feature matrix / target pairing shared by all `fit` functions.
pub(crate) fn validate_xy(features: &[Vec<f64>], targets: &[f64]) -> Result<usize, LearnError> {
    if features.is_empty() || targets.is_empty() {
        return Err(LearnError::EmptyTrainingSet);
    }
    if features.len() != targets.len() {
        return Err(LearnError::LengthMismatch {
            features: features.len(),
            targets: targets.len(),
        });
    }
    let dim = features[0].len();
    if dim == 0 {
        return Err(LearnError::InvalidHyperParameter {
            name: "features",
            reason: "feature rows must have at least one column".to_string(),
        });
    }
    for (row, feature_row) in features.iter().enumerate() {
        if feature_row.len() != dim {
            return Err(LearnError::InconsistentFeatureDim {
                expected: dim,
                found: feature_row.len(),
                row,
            });
        }
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_problems() {
        assert_eq!(validate_xy(&[], &[]), Err(LearnError::EmptyTrainingSet));
        assert_eq!(
            validate_xy(&[vec![1.0]], &[1.0, 2.0]),
            Err(LearnError::LengthMismatch {
                features: 1,
                targets: 2
            })
        );
        assert_eq!(
            validate_xy(&[vec![1.0, 2.0], vec![1.0]], &[1.0, 2.0]),
            Err(LearnError::InconsistentFeatureDim {
                expected: 2,
                found: 1,
                row: 1
            })
        );
        assert_eq!(validate_xy(&[vec![1.0, 2.0]], &[1.0]), Ok(2));
    }

    #[test]
    fn display_is_informative() {
        let err = LearnError::InvalidHyperParameter {
            name: "learning_rate",
            reason: "must be positive".to_string(),
        };
        assert!(err.to_string().contains("learning_rate"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LearnError>();
    }
}
