//! Logistic regression with optional L2 penalty, trained by gradient descent.

use crate::error::{validate_xy, LearnError};
use crate::traits::BinaryClassifier;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticConfig {
    /// L2 penalty strength (`0.0` = unpenalised, the paper reports both).
    pub l2_penalty: f64,
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch gradient-descent iterations.
    pub max_iterations: usize,
    /// Early-stopping tolerance on the gradient norm.
    pub tolerance: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            l2_penalty: 0.0,
            learning_rate: 0.1,
            max_iterations: 500,
            tolerance: 1e-6,
        }
    }
}

impl LogisticConfig {
    /// Configuration with the given L2 penalty and defaults otherwise.
    pub fn with_penalty(l2_penalty: f64) -> Self {
        Self {
            l2_penalty,
            ..Self::default()
        }
    }
}

/// Binary logistic regression: the paper's meta-classification linear model.
///
/// ```
/// use metaseg_learners::{BinaryClassifier, LogisticConfig, LogisticRegression};
///
/// let x = vec![vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]];
/// let y = vec![false, false, true, true];
/// let model = LogisticRegression::fit(&x, &y, LogisticConfig::default()).unwrap();
/// assert!(model.predict_proba_one(&[3.0]) > 0.9);
/// assert!(model.predict_proba_one(&[-3.0]) < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    intercept: f64,
    config: LogisticConfig,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fits the model with full-batch gradient descent on the (optionally
    /// L2-penalised) logistic loss.
    ///
    /// # Errors
    ///
    /// Returns a [`LearnError`] for inconsistent shapes, invalid
    /// hyper-parameters, or a training set that contains only one class.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[bool],
        config: LogisticConfig,
    ) -> Result<Self, LearnError> {
        let targets: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        let dim = validate_xy(features, &targets)?;
        if config.learning_rate <= 0.0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "learning_rate",
                reason: "must be positive".to_string(),
            });
        }
        if config.l2_penalty < 0.0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "l2_penalty",
                reason: "must be non-negative".to_string(),
            });
        }
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            return Err(LearnError::SingleClassTraining);
        }

        let n = features.len() as f64;
        let mut weights = vec![0.0f64; dim];
        let mut intercept = 0.0f64;

        for _ in 0..config.max_iterations {
            let mut grad_w = vec![0.0f64; dim];
            let mut grad_b = 0.0f64;
            for (row, &target) in features.iter().zip(&targets) {
                let z = intercept + weights.iter().zip(row).map(|(w, x)| w * x).sum::<f64>();
                let error = sigmoid(z) - target;
                for (g, x) in grad_w.iter_mut().zip(row) {
                    *g += error * x;
                }
                grad_b += error;
            }
            let mut grad_norm = 0.0;
            for (g, w) in grad_w.iter_mut().zip(&weights) {
                *g = *g / n + config.l2_penalty * w;
                grad_norm += *g * *g;
            }
            grad_b /= n;
            grad_norm += grad_b * grad_b;

            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= config.learning_rate * g;
            }
            intercept -= config.learning_rate * grad_b;

            if grad_norm.sqrt() < config.tolerance {
                break;
            }
        }

        Ok(Self {
            weights,
            intercept,
            config,
        })
    }

    /// Learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &LogisticConfig {
        &self.config
    }
}

impl BinaryClassifier for LogisticRegression {
    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature dimension mismatch"
        );
        let z = self.intercept
            + self
                .weights
                .iter()
                .zip(features)
                .map(|(w, x)| w * x)
                .sum::<f64>();
        sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn separable_data(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        let features: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let v = i as f64 / n as f64 * 4.0 - 2.0;
                vec![v, -v * 0.5]
            })
            .collect();
        let labels: Vec<bool> = features.iter().map(|r| r[0] > 0.0).collect();
        (features, labels)
    }

    #[test]
    fn sigmoid_is_stable_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(500.0) <= 1.0);
        assert!(sigmoid(-500.0) >= 0.0);
        assert!(sigmoid(500.0) > 0.999);
        assert!(sigmoid(-500.0) < 0.001);
    }

    #[test]
    fn learns_separable_data() {
        let (features, labels) = separable_data(40);
        let model = LogisticRegression::fit(&features, &labels, LogisticConfig::default()).unwrap();
        let predictions = BinaryClassifier::predict(&model, &features);
        let correct = predictions
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p == l)
            .count();
        assert!(correct as f64 / labels.len() as f64 > 0.9);
    }

    #[test]
    fn penalty_shrinks_weights() {
        let (features, labels) = separable_data(40);
        let free = LogisticRegression::fit(&features, &labels, LogisticConfig::default()).unwrap();
        let penalised =
            LogisticRegression::fit(&features, &labels, LogisticConfig::with_penalty(5.0)).unwrap();
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(penalised.weights()) < norm(free.weights()));
    }

    #[test]
    fn rejects_single_class_and_bad_params() {
        let features = vec![vec![1.0], vec![2.0]];
        assert_eq!(
            LogisticRegression::fit(&features, &[true, true], LogisticConfig::default()),
            Err(LearnError::SingleClassTraining)
        );
        let bad = LogisticConfig {
            learning_rate: 0.0,
            ..LogisticConfig::default()
        };
        assert!(LogisticRegression::fit(&features, &[true, false], bad).is_err());
        let bad_l2 = LogisticConfig {
            l2_penalty: -1.0,
            ..LogisticConfig::default()
        };
        assert!(LogisticRegression::fit(&features, &[true, false], bad_l2).is_err());
    }

    proptest! {
        #[test]
        fn prop_probabilities_in_unit_interval(seed in 0u64..100) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let features: Vec<Vec<f64>> = (0..30)
                .map(|_| vec![rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)])
                .collect();
            let labels: Vec<bool> = features.iter().map(|r| r[0] + r[1] > 0.0).collect();
            prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
            let model = LogisticRegression::fit(&features, &labels, LogisticConfig::default()).unwrap();
            for row in &features {
                let p = model.predict_proba_one(row);
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        /// The decision function is monotone in a feature with positive weight.
        #[test]
        fn prop_monotone_in_informative_feature(shift in 0.1f64..3.0) {
            let (features, labels) = separable_data(30);
            let model = LogisticRegression::fit(&features, &labels, LogisticConfig::default()).unwrap();
            let base = model.predict_proba_one(&[0.0, 0.0]);
            let shifted = model.predict_proba_one(&[shift, 0.0]);
            prop_assert!(shifted >= base - 1e-12);
        }
    }
}
