//! A minimal dense matrix and linear-system solver.
//!
//! Only what the closed-form linear models need: matrix products,
//! transposition and Gaussian elimination with partial pivoting.

use crate::error::LearnError;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from rows of equal length.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(
            !rows.is_empty() && !rows[0].is_empty(),
            "matrix must be non-empty"
        );
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must match for matrix multiplication"
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    let value = out.get(r, c) + a * other.get(k, c);
                    out.set(r, c, value);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must match column count");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * v[c]).sum())
            .collect()
    }

    /// Adds `value` to every diagonal element (ridge regularisation).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            let v = self.get(i, i) + value;
            self.set(i, i, v);
        }
    }
}

/// Solves the linear system `a * x = b` with Gaussian elimination and partial
/// pivoting.
///
/// # Errors
///
/// Returns [`LearnError::SingularSystem`] when a pivot is (numerically) zero.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.rows()`.
pub fn solve_linear_system(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LearnError> {
    assert_eq!(a.rows(), a.cols(), "system matrix must be square");
    assert_eq!(b.len(), a.rows(), "right-hand side has wrong length");
    let n = a.rows();
    // Augmented working copy.
    let mut work = vec![vec![0.0f64; n + 1]; n];
    for (r, work_row) in work.iter_mut().enumerate() {
        for c in 0..n {
            work_row[c] = a.get(r, c);
        }
        work_row[n] = b[r];
    }

    for col in 0..n {
        // Partial pivoting: pick the row with the largest absolute pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                work[r1][col]
                    .abs()
                    .partial_cmp(&work[r2][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if work[pivot_row][col].abs() < 1e-12 {
            return Err(LearnError::SingularSystem);
        }
        work.swap(col, pivot_row);
        // Eliminate below.
        for row in col + 1..n {
            let factor = work[row][col] / work[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..=n {
                work[row][k] -= factor * work[col][k];
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut sum = work[row][n];
        for col in row + 1..n {
            sum -= work[row][col] * x[col];
        }
        x[row] = sum / work[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_and_matmul() {
        let id = Matrix::identity(3);
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 10.0],
        ]);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn transpose_swaps_dims() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_known_value() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = a.matvec(&[1.0, 1.0]);
        assert_eq!(v, vec![3.0, 7.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve_linear_system(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(
            solve_linear_system(&a, &[1.0, 2.0]),
            Err(LearnError::SingularSystem)
        );
    }

    #[test]
    fn add_diagonal_regularises() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(0.5);
        assert_eq!(a.get(0, 0), 0.5);
        assert_eq!(a.get(1, 1), 0.5);
        assert_eq!(a.get(0, 1), 0.0);
    }

    proptest! {
        /// Solving A x = b and multiplying back recovers b for well-conditioned A.
        #[test]
        fn prop_solve_roundtrip(seed in 0u64..500, n in 1usize..6) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            // Diagonally dominant matrix -> invertible and well conditioned.
            let mut a = Matrix::zeros(n, n);
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    if r != c {
                        let v: f64 = rng.gen_range(-1.0..1.0);
                        a.set(r, c, v);
                        row_sum += v.abs();
                    }
                }
                a.set(r, r, row_sum + rng.gen_range(1.0..2.0));
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let x = solve_linear_system(&a, &b).unwrap();
            let back = a.matvec(&x);
            for (bi, backi) in b.iter().zip(back.iter()) {
                prop_assert!((bi - backi).abs() < 1e-6);
            }
        }

        /// (A^T)^T = A and (AB)^T = B^T A^T on small random matrices.
        #[test]
        fn prop_transpose_product_identity(seed in 0u64..200) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let rows = rng.gen_range(1..5);
            let inner = rng.gen_range(1..5);
            let cols = rng.gen_range(1..5);
            let a = Matrix::from_rows(&(0..rows).map(|_| (0..inner).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect::<Vec<_>>());
            let b = Matrix::from_rows(&(0..inner).map(|_| (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect::<Vec<_>>());
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            for r in 0..left.rows() {
                for c in 0..left.cols() {
                    prop_assert!((left.get(r, c) - right.get(r, c)).abs() < 1e-9);
                }
            }
        }
    }
}
