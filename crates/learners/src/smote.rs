//! SMOTE for regression (SmoteR) data augmentation.
//!
//! Section III of the paper augments the sparse KITTI-style meta-training set
//! with "a variant of SMOTE for continuous target variables" (Torgo et al.).
//! This module implements that variant: rare samples (targets far from the
//! target median) are oversampled by interpolating between a seed sample and
//! one of its k nearest neighbours in feature space, with the target
//! interpolated by the same mixing weight.

use crate::dataset::TabularDataset;
use crate::error::LearnError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of [`smote_regression`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmoteConfig {
    /// Number of nearest neighbours considered for interpolation.
    pub k_neighbors: usize,
    /// Fraction of synthetic samples to generate, relative to the number of
    /// rare seed samples (`1.0` doubles the rare region).
    pub oversample_ratio: f64,
    /// Fraction of the sample (by distance of the target from the median)
    /// treated as "rare" and used as interpolation seeds.
    pub rare_fraction: f64,
}

impl Default for SmoteConfig {
    fn default() -> Self {
        Self {
            k_neighbors: 5,
            oversample_ratio: 1.0,
            rare_fraction: 0.3,
        }
    }
}

impl SmoteConfig {
    fn validate(&self) -> Result<(), LearnError> {
        if self.k_neighbors == 0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "k_neighbors",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.oversample_ratio < 0.0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "oversample_ratio",
                reason: "must be non-negative".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.rare_fraction) {
            return Err(LearnError::InvalidHyperParameter {
                name: "rare_fraction",
                reason: "must be in [0, 1]".to_string(),
            });
        }
        Ok(())
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Generates synthetic samples with the SmoteR scheme and returns them as a
/// new dataset (the caller decides whether to merge them with the original).
///
/// Rare samples are those whose target is farthest from the median target;
/// each synthetic sample interpolates a rare seed with one of its k nearest
/// neighbours (among the rare samples) at a uniformly random mixing weight.
///
/// # Errors
///
/// Returns a [`LearnError`] if the configuration is invalid or the dataset
/// has fewer than two samples.
pub fn smote_regression<R: Rng>(
    dataset: &TabularDataset,
    config: SmoteConfig,
    rng: &mut R,
) -> Result<TabularDataset, LearnError> {
    config.validate()?;
    if dataset.len() < 2 {
        return Err(LearnError::EmptyTrainingSet);
    }

    // Rank samples by |target - median|; the top `rare_fraction` are seeds.
    let mut sorted_targets: Vec<f64> = dataset.targets.clone();
    sorted_targets.sort_by(|a, b| a.partial_cmp(b).expect("finite targets"));
    let median = sorted_targets[sorted_targets.len() / 2];

    let mut by_rarity: Vec<usize> = (0..dataset.len()).collect();
    by_rarity.sort_by(|&a, &b| {
        let da = (dataset.targets[a] - median).abs();
        let db = (dataset.targets[b] - median).abs();
        db.partial_cmp(&da).expect("finite targets")
    });
    let rare_count =
        ((dataset.len() as f64 * config.rare_fraction).round() as usize).clamp(2, dataset.len());
    let rare: Vec<usize> = by_rarity[..rare_count].to_vec();

    let synthetic_count = (rare.len() as f64 * config.oversample_ratio).round() as usize;
    let mut synthetic = TabularDataset::new();

    for _ in 0..synthetic_count {
        let seed_idx = rare[rng.gen_range(0..rare.len())];
        let seed_features = &dataset.features[seed_idx];

        // k nearest rare neighbours of the seed (excluding the seed itself).
        let mut neighbors: Vec<(usize, f64)> = rare
            .iter()
            .filter(|&&i| i != seed_idx)
            .map(|&i| (i, squared_distance(seed_features, &dataset.features[i])))
            .collect();
        neighbors.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        neighbors.truncate(config.k_neighbors.max(1));
        if neighbors.is_empty() {
            continue;
        }
        let (neighbor_idx, _) = neighbors[rng.gen_range(0..neighbors.len())];
        let neighbor_features = &dataset.features[neighbor_idx];

        let mix: f64 = rng.gen_range(0.0..1.0);
        let new_features: Vec<f64> = seed_features
            .iter()
            .zip(neighbor_features)
            .map(|(a, b)| a + mix * (b - a))
            .collect();
        let new_target = dataset.targets[seed_idx]
            + mix * (dataset.targets[neighbor_idx] - dataset.targets[seed_idx]);
        synthetic.push(new_features, new_target);
    }

    Ok(synthetic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy_dataset() -> TabularDataset {
        let features: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64 / 30.0, (i as f64 * 0.4).sin()])
            .collect();
        let targets: Vec<f64> = (0..30).map(|i| (i % 10) as f64 / 10.0).collect();
        TabularDataset::from_parts(features, targets).unwrap()
    }

    #[test]
    fn generates_requested_number_of_samples() {
        let ds = toy_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let config = SmoteConfig {
            oversample_ratio: 2.0,
            ..SmoteConfig::default()
        };
        let synthetic = smote_regression(&ds, config, &mut rng).unwrap();
        let rare_count = (30.0 * config.rare_fraction).round() as usize;
        assert_eq!(synthetic.len(), rare_count * 2);
        assert_eq!(synthetic.feature_dim(), 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        let ds = toy_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let bad_k = SmoteConfig {
            k_neighbors: 0,
            ..SmoteConfig::default()
        };
        assert!(smote_regression(&ds, bad_k, &mut rng).is_err());
        let bad_frac = SmoteConfig {
            rare_fraction: 1.5,
            ..SmoteConfig::default()
        };
        assert!(smote_regression(&ds, bad_frac, &mut rng).is_err());
        let tiny = TabularDataset::from_parts(vec![vec![0.0]], vec![0.0]).unwrap();
        assert!(smote_regression(&tiny, SmoteConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn zero_ratio_generates_nothing() {
        let ds = toy_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let config = SmoteConfig {
            oversample_ratio: 0.0,
            ..SmoteConfig::default()
        };
        let synthetic = smote_regression(&ds, config, &mut rng).unwrap();
        assert!(synthetic.is_empty());
    }

    proptest! {
        /// Every synthetic sample lies inside the bounding box of the original
        /// features and targets (convex combinations cannot escape it).
        #[test]
        fn prop_synthetic_samples_in_convex_bounds(seed in 0u64..200) {
            let ds = toy_dataset();
            let mut rng = StdRng::seed_from_u64(seed);
            let synthetic = smote_regression(&ds, SmoteConfig::default(), &mut rng).unwrap();
            let dim = ds.feature_dim();
            for d in 0..dim {
                let lo = ds.features.iter().map(|r| r[d]).fold(f64::INFINITY, f64::min);
                let hi = ds.features.iter().map(|r| r[d]).fold(f64::NEG_INFINITY, f64::max);
                for row in &synthetic.features {
                    prop_assert!(row[d] >= lo - 1e-9 && row[d] <= hi + 1e-9);
                }
            }
            let t_lo = ds.targets.iter().cloned().fold(f64::INFINITY, f64::min);
            let t_hi = ds.targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for t in &synthetic.targets {
                prop_assert!(*t >= t_lo - 1e-9 && *t <= t_hi + 1e-9);
            }
        }
    }
}
