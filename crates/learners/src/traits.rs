//! Model traits the MetaSeg pipeline is generic over.

/// A regression model mapping a feature vector to a real-valued prediction.
///
/// Meta regression (predicting the IoU of a segment) is expressed against
/// this trait, so linear models, gradient boosting and the MLP are
/// interchangeable.
pub trait Regressor {
    /// Predicts the target for a single feature vector.
    fn predict_one(&self, features: &[f64]) -> f64;

    /// Predicts targets for a batch of feature vectors.
    fn predict(&self, features: &[Vec<f64>]) -> Vec<f64> {
        features.iter().map(|row| self.predict_one(row)).collect()
    }
}

/// A binary classification model producing a positive-class probability.
///
/// Meta classification (deciding `IoU = 0` vs `IoU > 0` for a segment) is
/// expressed against this trait.
pub trait BinaryClassifier {
    /// Probability of the positive class for a single feature vector.
    fn predict_proba_one(&self, features: &[f64]) -> f64;

    /// Probabilities of the positive class for a batch of feature vectors.
    fn predict_proba(&self, features: &[Vec<f64>]) -> Vec<f64> {
        features
            .iter()
            .map(|row| self.predict_proba_one(row))
            .collect()
    }

    /// Hard prediction at the default threshold of `0.5`.
    fn predict_one(&self, features: &[f64]) -> bool {
        self.predict_proba_one(features) >= 0.5
    }

    /// Hard predictions for a batch of feature vectors.
    fn predict(&self, features: &[Vec<f64>]) -> Vec<bool> {
        features.iter().map(|row| self.predict_one(row)).collect()
    }
}

impl<T: Regressor + ?Sized> Regressor for Box<T> {
    fn predict_one(&self, features: &[f64]) -> f64 {
        (**self).predict_one(features)
    }
}

impl<T: BinaryClassifier + ?Sized> BinaryClassifier for Box<T> {
    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        (**self).predict_proba_one(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstantModel(f64);

    impl Regressor for ConstantModel {
        fn predict_one(&self, _features: &[f64]) -> f64 {
            self.0
        }
    }

    impl BinaryClassifier for ConstantModel {
        fn predict_proba_one(&self, _features: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_batch_methods_delegate() {
        let model = ConstantModel(0.7);
        let rows = vec![vec![0.0], vec![1.0]];
        assert_eq!(Regressor::predict(&model, &rows), vec![0.7, 0.7]);
        assert_eq!(BinaryClassifier::predict(&model, &rows), vec![true, true]);
        let low = ConstantModel(0.2);
        assert_eq!(BinaryClassifier::predict(&low, &rows), vec![false, false]);
    }

    #[test]
    fn boxed_models_still_work() {
        let boxed: Box<dyn Regressor> = Box::new(ConstantModel(1.5));
        assert_eq!(boxed.predict_one(&[0.0]), 1.5);
        let boxed_clf: Box<dyn BinaryClassifier> = Box::new(ConstantModel(0.9));
        assert!(boxed_clf.predict_one(&[0.0]));
    }
}
