//! Gradient-boosted regression trees for regression and binary classification.

use crate::error::{validate_xy, LearnError};
use crate::traits::{BinaryClassifier, Regressor};
use crate::tree::{RegressionTree, TreeConfig};
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by the boosting models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoostingConfig {
    /// Number of boosting stages (trees).
    pub n_estimators: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Configuration of the individual trees.
    pub tree: TreeConfig,
}

impl Default for BoostingConfig {
    fn default() -> Self {
        Self {
            n_estimators: 50,
            learning_rate: 0.1,
            tree: TreeConfig::default(),
        }
    }
}

impl BoostingConfig {
    /// A small/fast configuration for tests and smoke experiments.
    pub fn fast() -> Self {
        Self {
            n_estimators: 20,
            learning_rate: 0.2,
            tree: TreeConfig {
                max_depth: 2,
                ..TreeConfig::default()
            },
        }
    }

    fn validate(&self) -> Result<(), LearnError> {
        if self.n_estimators == 0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "n_estimators",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.learning_rate <= 0.0 {
            return Err(LearnError::InvalidHyperParameter {
                name: "learning_rate",
                reason: "must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Gradient boosting with squared-error loss (least-squares boosting).
///
/// This is the paper's "gradient boosting" meta-regression model.
///
/// ```
/// use metaseg_learners::{BoostingConfig, GradientBoostingRegressor, Regressor};
///
/// let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 10.0]).collect();
/// let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
/// let model = GradientBoostingRegressor::fit(&x, &y, BoostingConfig::fast()).unwrap();
/// assert!((model.predict_one(&[1.5]) - 2.25).abs() < 0.6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostingRegressor {
    initial: f64,
    trees: Vec<RegressionTree>,
    config: BoostingConfig,
}

impl GradientBoostingRegressor {
    /// Fits the boosted ensemble.
    ///
    /// # Errors
    ///
    /// Returns a [`LearnError`] for inconsistent data shapes or invalid
    /// hyper-parameters.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        config: BoostingConfig,
    ) -> Result<Self, LearnError> {
        validate_xy(features, targets)?;
        config.validate()?;

        let initial = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut predictions = vec![initial; targets.len()];
        let mut trees = Vec::with_capacity(config.n_estimators);

        for _ in 0..config.n_estimators {
            // Negative gradient of the squared loss = residual.
            let residuals: Vec<f64> = targets
                .iter()
                .zip(&predictions)
                .map(|(t, p)| t - p)
                .collect();
            let tree = RegressionTree::fit(features, &residuals, config.tree)?;
            for (prediction, row) in predictions.iter_mut().zip(features) {
                *prediction += config.learning_rate * tree.predict_one(row);
            }
            trees.push(tree);
        }

        Ok(Self {
            initial,
            trees,
            config,
        })
    }

    /// Number of fitted boosting stages.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The configuration the ensemble was trained with.
    pub fn config(&self) -> &BoostingConfig {
        &self.config
    }
}

impl Regressor for GradientBoostingRegressor {
    fn predict_one(&self, features: &[f64]) -> f64 {
        self.initial
            + self
                .trees
                .iter()
                .map(|t| self.config.learning_rate * t.predict_one(features))
                .sum::<f64>()
    }
}

/// Gradient boosting with logistic loss for binary classification.
///
/// Trees are fit to the negative gradient of the log loss in log-odds space;
/// `predict_proba` applies the sigmoid to the accumulated score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostingClassifier {
    initial_log_odds: f64,
    trees: Vec<RegressionTree>,
    config: BoostingConfig,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl GradientBoostingClassifier {
    /// Fits the boosted classifier.
    ///
    /// # Errors
    ///
    /// Returns a [`LearnError`] for inconsistent shapes, invalid
    /// hyper-parameters, or single-class training data.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[bool],
        config: BoostingConfig,
    ) -> Result<Self, LearnError> {
        let targets: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        validate_xy(features, &targets)?;
        config.validate()?;
        let positives = labels.iter().filter(|&&l| l).count();
        if positives == 0 || positives == labels.len() {
            return Err(LearnError::SingleClassTraining);
        }

        let p = positives as f64 / labels.len() as f64;
        let initial_log_odds = (p / (1.0 - p)).ln();
        let mut scores = vec![initial_log_odds; labels.len()];
        let mut trees = Vec::with_capacity(config.n_estimators);

        for _ in 0..config.n_estimators {
            // Negative gradient of log-loss w.r.t. the score: y - sigmoid(score).
            let residuals: Vec<f64> = targets
                .iter()
                .zip(&scores)
                .map(|(t, s)| t - sigmoid(*s))
                .collect();
            let tree = RegressionTree::fit(features, &residuals, config.tree)?;
            for (score, row) in scores.iter_mut().zip(features) {
                *score += config.learning_rate * tree.predict_one(row);
            }
            trees.push(tree);
        }

        Ok(Self {
            initial_log_odds,
            trees,
            config,
        })
    }

    /// Number of fitted boosting stages.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Raw accumulated log-odds score for one feature vector.
    pub fn decision_function(&self, features: &[f64]) -> f64 {
        self.initial_log_odds
            + self
                .trees
                .iter()
                .map(|t| self.config.learning_rate * t.predict_one(features))
                .sum::<f64>()
    }
}

impl BinaryClassifier for GradientBoostingClassifier {
    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        sigmoid(self.decision_function(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regressor_fits_nonlinear_function() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] - 3.0).powi(2)).collect();
        let model = GradientBoostingRegressor::fit(&x, &y, BoostingConfig::default()).unwrap();
        let sse: f64 = x
            .iter()
            .zip(&y)
            .map(|(r, t)| (model.predict_one(r) - t).powi(2))
            .sum();
        // A depth-3 ensemble fits the parabola much better than the mean predictor.
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let baseline: f64 = y.iter().map(|t| (t - mean).powi(2)).sum();
        assert!(sse < baseline * 0.05);
        assert_eq!(model.n_trees(), 50);
    }

    #[test]
    fn more_trees_reduce_training_error() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64 * 0.7).sin(), i as f64 / 40.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0 + r[1]).collect();
        let sse = |n: usize| {
            let config = BoostingConfig {
                n_estimators: n,
                ..BoostingConfig::default()
            };
            let model = GradientBoostingRegressor::fit(&x, &y, config).unwrap();
            x.iter()
                .zip(&y)
                .map(|(r, t)| (model.predict_one(r) - t).powi(2))
                .sum::<f64>()
        };
        assert!(sse(50) <= sse(5) + 1e-9);
        assert!(sse(5) <= sse(1) + 1e-9);
    }

    #[test]
    fn classifier_separates_clusters() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                if i < 20 {
                    vec![i as f64 * 0.05, 0.0]
                } else {
                    vec![2.0 + (i - 20) as f64 * 0.05, 1.0]
                }
            })
            .collect();
        let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let model = GradientBoostingClassifier::fit(&x, &labels, BoostingConfig::fast()).unwrap();
        let correct = x
            .iter()
            .zip(&labels)
            .filter(|(row, &l)| model.predict_one(row) == l)
            .count();
        assert!(correct >= 38);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        let labels = vec![false, true];
        let zero_trees = BoostingConfig {
            n_estimators: 0,
            ..BoostingConfig::default()
        };
        assert!(GradientBoostingRegressor::fit(&x, &y, zero_trees).is_err());
        let bad_lr = BoostingConfig {
            learning_rate: 0.0,
            ..BoostingConfig::default()
        };
        assert!(GradientBoostingClassifier::fit(&x, &labels, bad_lr).is_err());
        assert_eq!(
            GradientBoostingClassifier::fit(&x, &[true, true], BoostingConfig::fast()),
            Err(LearnError::SingleClassTraining)
        );
    }

    proptest! {
        #[test]
        fn prop_classifier_probabilities_valid(seed in 0u64..50) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let x: Vec<Vec<f64>> = (0..30).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
            let labels: Vec<bool> = x.iter().map(|r| r[0] > 0.0).collect();
            prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
            let model = GradientBoostingClassifier::fit(&x, &labels, BoostingConfig::fast()).unwrap();
            for row in &x {
                let p = model.predict_proba_one(row);
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        #[test]
        fn prop_regressor_predictions_bounded_for_bounded_targets(seed in 0u64..50) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let x: Vec<Vec<f64>> = (0..30).map(|_| vec![rng.gen_range(0.0..1.0)]).collect();
            let y: Vec<f64> = x.iter().map(|r| r[0].clamp(0.0, 1.0)).collect();
            let model = GradientBoostingRegressor::fit(&x, &y, BoostingConfig::fast()).unwrap();
            for row in &x {
                let p = model.predict_one(row);
                // Shrinkage keeps predictions near the convex hull of targets.
                prop_assert!(p > -0.5 && p < 1.5);
            }
        }
    }
}
