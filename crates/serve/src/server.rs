//! The multi-camera TCP inference server.
//!
//! Architecture (one process, two thread roles):
//!
//! * **Event loop** — one transport thread owns the listener and every
//!   client socket, nonblocking, multiplexed through the vendored poller
//!   (epoll on Linux; see [`crate::transport`]). It accepts, parses — JSON
//!   lines and negotiated binary frames, routed by the first byte — answers
//!   inline operations, and turns frame / `stats` / `close` operations into
//!   jobs on the owning session's shard. It never runs inference and never
//!   blocks on a session lock, so accepting and parsing stay responsive
//!   under thousands of connections, with no thread or `JoinHandle` per
//!   connection to leak.
//! * **Shard workers** — `workers` threads, one per shard. Sessions are
//!   keyed onto shards by `session_id % workers`, so one session's frames
//!   are processed by one worker in arrival order — per-session frame order
//!   is preserved by construction — while distinct sessions spread across
//!   shards and run in parallel, each shard draining **micro-batches** of up
//!   to `batch_max` queued jobs and pushing them through the session engines:
//!   decoded JSON frames via `MetaSegStream::push_frame`, binary wire
//!   payloads via `MetaSegStream::push_payload`, which dequantizes the
//!   checksum-verified bytes straight into the engine's extraction scratch.
//!   Each shard's queue is bounded: when a session's shard is full the
//!   submission immediately answers `backpressure` instead of blocking or
//!   buffering unboundedly — the overload signal a fleet balancer needs.
//!   Statistics are kept per shard, under the shard's own queue lock (see
//!   [`ShardStats`]), and aggregated on snapshot.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) stops accepting and
//! reading, drains every job already handed to the shards, flushes the
//! responses, then joins every thread — no accepted frame is ever silently
//! dropped.

use crate::protocol::{ErrorCode, Response};
use crate::registry::ModelRegistry;
use crate::shard::{worker_loop, Completion, Shard};
use crate::transport::Transport;
use mio::{Interest, Poll, Token, Waker};
use serde::{Deserialize, Serialize};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs of a server instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Worker threads — one per shard; sessions are keyed onto shards by
    /// `session_id % workers`.
    pub workers: usize,
    /// Bounded frame-queue depth *per shard*; submissions beyond it are
    /// rejected with [`ErrorCode::Backpressure`].
    pub queue_depth: usize,
    /// Largest micro-batch one shard worker drains from its queue in one go
    /// (at least 1). Only jobs *already queued* are taken — a worker never
    /// waits to fill a batch, so lightly loaded servers keep single-frame
    /// latency while loaded ones amortise dispatch.
    pub batch_max: usize,
    /// Artificial per-frame inference delay in milliseconds — a loadtest /
    /// test knob emulating heavier models; `0` (the default) for real
    /// serving.
    pub synthetic_delay_ms: u64,
    /// Poll timeout of the event loop; bounds how quickly shutdown is
    /// observed when no traffic arrives.
    pub poll_interval_ms: u64,
    /// Maximum accepted message length in bytes — the request-line cap of
    /// the JSON path and the payload cap of the binary path. A connection
    /// whose line grows past this without a newline, or whose binary header
    /// declares a payload beyond it, is answered (where possible) and
    /// dropped rather than allowed to grow server memory without bound.
    pub max_line_bytes: usize,
    /// Connections the event loop will hold at once. Accepts beyond the cap
    /// are shed at accept time: the server writes one typed
    /// [`ErrorCode::Overloaded`] line (best effort) and drops the socket,
    /// keeping the slab and poller bounded under connection floods.
    pub max_connections: usize,
    /// Bound on one connection's buffered-but-unsent response bytes. A
    /// consumer that stops reading while responses accumulate past this is
    /// evicted — its memory must not grow with the backlog it refuses to
    /// drain. `0` disables the cap.
    pub max_outbuf_bytes: usize,
    /// Milliseconds a connection may sit idle (no request in progress, no
    /// response in flight) before the event loop drops it. `0` disables
    /// idle deadlines.
    pub idle_timeout_ms: u64,
    /// Milliseconds a connection may stall *mid-message* — a partial JSON
    /// line or binary frame buffered, no new bytes arriving — before it is
    /// dropped. This is the slow-loris defense: a trickling peer holds its
    /// slot only as long as it keeps feeding bytes. `0` disables read
    /// deadlines.
    pub read_timeout_ms: u64,
    /// Milliseconds an *orphaned* session (its owning connection died
    /// without closing it) lingers server-side awaiting a
    /// [`Request::Resume`](crate::protocol::Request::Resume) from a
    /// reconnecting client before it is reaped. `0` reaps sessions the
    /// moment their connection dies (the pre-resume behaviour).
    pub session_linger_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            batch_max: 4,
            synthetic_delay_ms: 0,
            poll_interval_ms: 25,
            // Generous for softmax payloads (a 500x300x19 frame is ~40 MiB
            // of JSON) while still bounding a hostile newline-free stream.
            max_line_bytes: 256 << 20,
            max_connections: 4096,
            max_outbuf_bytes: 64 << 20,
            idle_timeout_ms: 60_000,
            read_timeout_ms: 10_000,
            session_linger_ms: 60_000,
        }
    }
}

impl ServerConfig {
    pub(crate) fn poll_interval(&self) -> Duration {
        Duration::from_millis(self.poll_interval_ms.max(1))
    }
}

/// Lifetime counters of a server, snapshot via [`ServerHandle::stats`].
///
/// Queue- and batch-related counters are kept per shard (see
/// [`ShardStats`]); this aggregate sums the counts and takes the maximum of
/// the peaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: usize,
    /// Sessions opened.
    pub sessions_opened: usize,
    /// Frame jobs fully processed.
    pub frames_processed: usize,
    /// Frames that arrived as binary wire frames (the rest arrived as JSON).
    pub binary_frames: usize,
    /// Frame submissions rejected with `backpressure`.
    pub rejected: usize,
    /// Largest queue occupancy ever observed on any one shard.
    pub peak_queue_depth: usize,
    /// Micro-batches drained across all shard workers (every drain that
    /// contained at least one frame counts, even a single-frame one).
    pub batches: usize,
    /// Largest micro-batch (in frames) any shard ever drained in one go.
    pub peak_batch: usize,
    /// Connections dropped by an idle or mid-message read deadline.
    pub timed_out: usize,
    /// Connections evicted because their buffered response backlog exceeded
    /// [`ServerConfig::max_outbuf_bytes`].
    pub evicted_slow: usize,
    /// Connections shed at accept time because the server was at
    /// [`ServerConfig::max_connections`].
    pub shed_connections: usize,
    /// Sessions re-attached to a (new) connection via `resume`.
    pub sessions_resumed: usize,
    /// Sessions reaped without an explicit `close`: their connection died
    /// and no client resumed them within
    /// [`ServerConfig::session_linger_ms`].
    pub sessions_expired: usize,
}

/// Lifetime counters of one shard, snapshot via [`ServerHandle::shard_stats`].
///
/// Every field mutates under the shard's queue lock, so the numbers are
/// exact: in particular `peak_queue_depth` counts only frames that were
/// actually admitted — a backpressure-rejected submission increments
/// `rejected` and touches nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShardStats {
    /// Index of this shard (`session_id % workers` keys sessions onto it).
    pub shard: usize,
    /// Frame jobs fully processed by this shard's worker.
    pub frames_processed: usize,
    /// Frame submissions rejected with `backpressure` because this shard's
    /// queue was full.
    pub rejected: usize,
    /// Largest frame-queue occupancy ever observed on this shard.
    pub peak_queue_depth: usize,
    /// Micro-batches containing at least one frame drained by this shard's
    /// worker.
    pub batches: usize,
    /// Largest micro-batch (in frames) this shard ever drained in one go.
    pub peak_batch: usize,
}

/// State shared between the event loop, the shard workers and the handle.
pub(crate) struct Shared {
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) config: ServerConfig,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) next_session: AtomicU64,
    pub(crate) connections: AtomicUsize,
    pub(crate) sessions_opened: AtomicUsize,
    pub(crate) binary_frames: AtomicUsize,
    pub(crate) timed_out: AtomicUsize,
    pub(crate) evicted_slow: AtomicUsize,
    pub(crate) shed_connections: AtomicUsize,
    pub(crate) sessions_resumed: AtomicUsize,
    pub(crate) sessions_expired: AtomicUsize,
    /// Gauge: sessions currently open server-side (owned or lingering).
    pub(crate) open_sessions: AtomicUsize,
    /// Gauge: connections currently registered with the event loop.
    pub(crate) active_connections: AtomicUsize,
}

/// A session whose mutex is poisoned is *dead*: a previous frame panicked
/// mid-inference, so the engine may be half-updated (tracker advanced,
/// windows not) and serving it further could emit silently-wrong verdicts.
/// Every operation on it answers this typed error — the connection stays
/// usable and the camera recovers by opening a fresh session.
pub(crate) fn session_poisoned_error(session: u64) -> Response {
    Response::Error {
        code: ErrorCode::Internal,
        message: format!(
            "session {session} died on a server-side panic; close it and open a new session"
        ),
    }
}

pub(crate) fn bad_request(message: impl ToString) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: message.to_string(),
    }
}

pub(crate) fn shutting_down_error() -> Response {
    Response::Error {
        code: ErrorCode::ShuttingDown,
        message: "server is shutting down".to_string(),
    }
}

pub(crate) fn unknown_session_error(session: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownSession,
        message: format!("session {session} is not open on this connection"),
    }
}

pub(crate) fn overloaded_error(limit: usize) -> Response {
    Response::Error {
        code: ErrorCode::Overloaded,
        message: format!("server is at its connection limit ({limit}); retry after backing off"),
    }
}

/// A running server. Dropping the handle signals shutdown without waiting;
/// calling [`ServerHandle::shutdown`] drains gracefully and joins.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    shards: Arc<[Shard]>,
    waker: Arc<Waker>,
    transport: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Entry point: bind, spawn, serve.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and spawns the event
    /// loop and one worker thread per shard. Returns immediately; the
    /// server runs until [`ServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when binding or setting up the
    /// poller fails.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let poll = Poll::new()?;
        poll.register(&listener, Token(0), Interest::READABLE)?;
        let waker = Arc::new(Waker::new(&poll, Token(1))?);

        let shared = Arc::new(Shared {
            registry,
            config,
            shutting_down: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            connections: AtomicUsize::new(0),
            sessions_opened: AtomicUsize::new(0),
            binary_frames: AtomicUsize::new(0),
            timed_out: AtomicUsize::new(0),
            evicted_slow: AtomicUsize::new(0),
            shed_connections: AtomicUsize::new(0),
            sessions_resumed: AtomicUsize::new(0),
            sessions_expired: AtomicUsize::new(0),
            open_sessions: AtomicUsize::new(0),
            active_connections: AtomicUsize::new(0),
        });

        let shard_count = config.workers.max(1);
        let shards: Arc<[Shard]> = (0..shard_count)
            .map(|index| Shard::new(index, &config))
            .collect();
        let (completion_tx, completion_rx) = mpsc::channel::<Completion>();

        let worker_handles: Vec<JoinHandle<()>> = (0..shard_count)
            .map(|index| {
                let shards = Arc::clone(&shards);
                let completions: Sender<Completion> = completion_tx.clone();
                let waker = Arc::clone(&waker);
                thread::Builder::new()
                    .name(format!("metaseg-shard-{index}"))
                    .spawn(move || worker_loop(&shards[index], &completions, &waker))
                    .expect("spawning a shard worker thread succeeds")
            })
            .collect();
        drop(completion_tx);

        let transport = {
            let transport = Transport::new(
                listener,
                poll,
                Arc::clone(&waker),
                Arc::clone(&shared),
                Arc::clone(&shards),
                completion_rx,
            );
            thread::Builder::new()
                .name("metaseg-transport".to_string())
                .spawn(move || transport.run())
                .expect("spawning the transport thread succeeds")
        };

        Ok(ServerHandle {
            addr,
            shared,
            shards,
            waker,
            transport: Some(transport),
            workers: worker_handles,
        })
    }
}

impl ServerHandle {
    /// The address the server actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model registry this server serves from. Models swapped into the
    /// registry (see [`ModelRegistry::swap`]) are picked up by sessions
    /// opened afterwards; existing sessions keep the engine they started
    /// with and are never dropped by a swap.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Snapshot of the server's lifetime counters, aggregated across shards
    /// (counts are summed, peaks are maxed).
    pub fn stats(&self) -> ServerStats {
        let mut stats = ServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            sessions_opened: self.shared.sessions_opened.load(Ordering::Relaxed),
            binary_frames: self.shared.binary_frames.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out.load(Ordering::Relaxed),
            evicted_slow: self.shared.evicted_slow.load(Ordering::Relaxed),
            shed_connections: self.shared.shed_connections.load(Ordering::Relaxed),
            sessions_resumed: self.shared.sessions_resumed.load(Ordering::Relaxed),
            sessions_expired: self.shared.sessions_expired.load(Ordering::Relaxed),
            ..ServerStats::default()
        };
        for shard in self.shards.iter() {
            let shard = shard.snapshot();
            stats.frames_processed += shard.frames_processed;
            stats.rejected += shard.rejected;
            stats.batches += shard.batches;
            stats.peak_queue_depth = stats.peak_queue_depth.max(shard.peak_queue_depth);
            stats.peak_batch = stats.peak_batch.max(shard.peak_batch);
        }
        stats
    }

    /// Per-shard counters, in shard order — the exact numbers the aggregate
    /// [`ServerHandle::stats`] snapshot is computed from.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(Shard::snapshot).collect()
    }

    /// Gauge: sessions currently open server-side, including orphaned
    /// sessions lingering for a resume. Zero after every camera has closed
    /// (or its linger expired) — the "no leaked sessions" invariant chaos
    /// harnesses assert.
    pub fn open_sessions(&self) -> usize {
        self.shared.open_sessions.load(Ordering::Relaxed)
    }

    /// Gauge: connections currently registered with the event loop. Zero
    /// once every client has disconnected and the loop has reaped the slots
    /// — the "no leaked slab slots" invariant chaos harnesses assert.
    pub fn active_connections(&self) -> usize {
        self.shared.active_connections.load(Ordering::Relaxed)
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting and reading, drain every job
    /// already handed to the shards, flush the responses, join every
    /// thread, and return the final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(transport) = self.transport.take() {
            let _ = transport.join();
        }
        // The transport has drained: every submitted job has completed, so
        // the shard queues are empty and closing them lets the workers exit.
        for shard in self.shards.iter() {
            shard.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle must not strand the server's threads: signal
        // shutdown and let them wind down on their own (without joining —
        // `shutdown` is the graceful, joining path; this one is idempotent
        // after it). Workers drain what is already queued before exiting,
        // and the transport still submits safely against closed shards (the
        // submission is refused and answered, never stranded), so the drain
        // invariant — outstanding jobs all complete — holds here too.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.waker.wake();
        for shard in self.shards.iter() {
            shard.close();
        }
    }
}
