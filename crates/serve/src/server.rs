//! The multi-camera TCP inference server.
//!
//! Architecture (one process, three thread roles):
//!
//! * **Acceptor** — accepts TCP connections in a non-blocking poll loop and
//!   spawns one connection thread each. It never does inference and never
//!   blocks on the worker queue, so accepting stays O(1) under load.
//! * **Connection threads** — own their camera *sessions* (session id →
//!   [`MetaSegStream`] engine), decode request messages, and submit frame
//!   jobs to the worker pool, relaying the verdicts back in request order.
//!   Each message is either a JSON line or (after [`Request::Negotiate`]) a
//!   length-prefixed binary frame, routed by peeking one byte: JSON lines
//!   always start with `{`, binary frames with the magic byte. A malformed
//!   message is answered with a typed `bad-request` error; the connection
//!   survives whenever the stream can be resynchronised (the binary header
//!   carries the payload length, so even a frame that fails validation is
//!   skipped cleanly).
//! * **Worker pool** — `workers` threads draining a bounded job queue in
//!   **cross-session micro-batches**: a worker pops one job, opportunistically
//!   drains up to `batch_max - 1` more that are already queued, groups them
//!   by session, and fans the groups out across the rayon pool, pushing each
//!   group's frames in arrival order through the session engine — decoded
//!   JSON frames via [`MetaSegStream::push_frame`], binary wire payloads via
//!   [`MetaSegStream::push_payload`], which dequantizes the checksum-verified
//!   bytes straight into the engine's extraction scratch (no intermediate
//!   `ProbMap` on the binary path).
//!   Frames of one session stay strictly ordered; frames of distinct
//!   sessions run in parallel, keeping cores saturated under many-camera
//!   load even with few pool workers. Batching never changes a verdict —
//!   engines are per-session and process their frames in arrival order
//!   exactly as in unbatched mode. When the queue is full the submitting
//!   connection immediately answers `backpressure` instead of blocking or
//!   buffering unboundedly — the overload signal a fleet balancer needs.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) stops the acceptor,
//! rejects new sessions, lets connection threads finish their in-flight
//! request, then drains every queued job before the workers exit — no
//! accepted frame is ever silently dropped.

use crate::protocol::{ErrorCode, FrameFormat, Request, Response};
use crate::registry::ModelRegistry;
use crate::wire::{self, BinaryFrameHeader, WireError, BINARY_FRAME_MAGIC, BINARY_HEADER_LEN};
use metaseg::stream::MetaSegStream;
use metaseg::DispersionPrecision;
use metaseg_data::{Frame, FrameId, ProbMap, ProbPayload};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs of a server instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Worker threads draining the inference queue.
    pub workers: usize,
    /// Bounded depth of the inference queue; submissions beyond it are
    /// rejected with [`ErrorCode::Backpressure`].
    pub queue_depth: usize,
    /// Largest cross-session micro-batch one worker drains from the queue in
    /// one go (at least 1). Only frames *already queued* are taken — a
    /// worker never waits to fill a batch, so lightly loaded servers keep
    /// single-frame latency while loaded ones amortise dispatch across
    /// sessions.
    pub batch_max: usize,
    /// Artificial per-frame inference delay in milliseconds — a loadtest /
    /// test knob emulating heavier models; `0` (the default) for real
    /// serving.
    pub synthetic_delay_ms: u64,
    /// Poll interval of the acceptor loop and the connection-thread read
    /// timeout; bounds how quickly shutdown is observed.
    pub poll_interval_ms: u64,
    /// Maximum accepted message length in bytes — the request-line cap of
    /// the JSON path and the payload cap of the binary path. A connection
    /// whose line grows past this without a newline, or whose binary header
    /// declares a payload beyond it, is answered (where possible) and
    /// dropped rather than allowed to grow server memory without bound.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            batch_max: 4,
            synthetic_delay_ms: 0,
            poll_interval_ms: 25,
            // Generous for softmax payloads (a 500x300x19 frame is ~40 MiB
            // of JSON) while still bounding a hostile newline-free stream.
            max_line_bytes: 256 << 20,
        }
    }
}

impl ServerConfig {
    fn poll_interval(&self) -> Duration {
        Duration::from_millis(self.poll_interval_ms.max(1))
    }
}

/// Lifetime counters of a server, snapshot via [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: usize,
    /// Sessions opened.
    pub sessions_opened: usize,
    /// Frame jobs fully processed.
    pub frames_processed: usize,
    /// Frames that arrived as binary wire frames (the rest arrived as JSON).
    pub binary_frames: usize,
    /// Frame submissions rejected with `backpressure`.
    pub rejected: usize,
    /// Largest queue occupancy ever observed.
    pub peak_queue_depth: usize,
    /// Micro-batches drained by the worker pool (every drain counts, even a
    /// single-frame one).
    pub batches: usize,
    /// Largest micro-batch ever drained in one go.
    pub peak_batch: usize,
}

/// State shared by every thread of one server.
struct Shared {
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    shutting_down: AtomicBool,
    next_session: AtomicU64,
    queue_len: AtomicUsize,
    connections: AtomicUsize,
    sessions_opened: AtomicUsize,
    frames_processed: AtomicUsize,
    binary_frames: AtomicUsize,
    rejected: AtomicUsize,
    peak_queue_depth: AtomicUsize,
    batches: AtomicUsize,
    peak_batch: AtomicUsize,
}

/// One camera session: the engine plus bookkeeping labels.
struct Session {
    engine: MetaSegStream,
    #[allow(dead_code)]
    camera: String,
}

/// A session whose mutex is poisoned is *dead*: a previous frame panicked
/// mid-inference, so the engine may be half-updated (tracker advanced,
/// windows not) and serving it further could emit silently-wrong verdicts.
/// Every operation on it answers this typed error — the connection stays
/// usable and the camera recovers by opening a fresh session.
fn session_poisoned_error(session: u64) -> Response {
    Response::Error {
        code: ErrorCode::Internal,
        message: format!(
            "session {session} died on a server-side panic; close it and open a new session"
        ),
    }
}

/// Per-connection state owned by its connection thread.
struct Connection {
    sessions: HashMap<u64, Arc<Mutex<Session>>>,
    /// Whether binary frame submissions have been negotiated.
    binary_frames: bool,
    /// Negotiated dispersion-scan precision for this connection's frames.
    dispersion: DispersionPrecision,
}

/// How a queued frame travels to the worker that will serve it.
enum JobPayload {
    /// A softmax field decoded at the connection thread (the JSON path —
    /// the document decoder produces an owned [`ProbMap`] anyway).
    Decoded(ProbMap),
    /// Checksum-verified wire bytes, untouched since the socket read. The
    /// worker dequantizes them directly into the session engine's extraction
    /// scratch — no intermediate `ProbMap` is ever materialised.
    Encoded(ProbPayload),
}

/// A queued inference job: one frame of one session plus the reply channel
/// of the submitting connection thread.
struct Job {
    session_id: u64,
    session: Arc<Mutex<Session>>,
    payload: JobPayload,
    dispersion: DispersionPrecision,
    reply: Sender<Response>,
}

/// A running server; dropping the handle aborts without draining, calling
/// [`ServerHandle::shutdown`] drains gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    job_tx: Option<SyncSender<Job>>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
}

/// Entry point: bind, spawn, serve.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and spawns the
    /// acceptor and worker threads. Returns immediately; the server runs
    /// until [`ServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when binding fails.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            registry,
            config,
            shutting_down: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            queue_len: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            sessions_opened: AtomicUsize::new(0),
            frames_processed: AtomicUsize::new(0),
            binary_frames: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            peak_queue_depth: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            peak_batch: AtomicUsize::new(0),
        });

        let workers = config.workers.max(1);
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|index| {
                let rx = Arc::clone(&job_rx);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("metaseg-worker-{index}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawning a worker thread succeeds")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let job_tx = job_tx.clone();
            thread::Builder::new()
                .name("metaseg-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &shared, &job_tx))
                .expect("spawning the acceptor thread succeeds")
        };

        Ok(ServerHandle {
            addr,
            shared,
            job_tx: Some(job_tx),
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }
}

impl ServerHandle {
    /// The address the server actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            sessions_opened: self.shared.sessions_opened.load(Ordering::Relaxed),
            frames_processed: self.shared.frames_processed.load(Ordering::Relaxed),
            binary_frames: self.shared.binary_frames.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            peak_queue_depth: self.shared.peak_queue_depth.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            peak_batch: self.shared.peak_batch.load(Ordering::Relaxed),
        }
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, let every connection finish its
    /// in-flight request, drain all queued jobs, join every thread, and
    /// return the final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let connection_threads = acceptor.join().expect("acceptor thread never panics");
            for handle in connection_threads {
                let _ = handle.join();
            }
        }
        // All connection threads are gone, so the acceptor-side sender is
        // the last one: dropping it lets workers drain the queue and exit.
        drop(self.job_tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    job_tx: &SyncSender<Job>,
) -> Vec<JoinHandle<()>> {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    let mut accepted = 0usize;
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let job_tx = job_tx.clone();
                let handle = thread::Builder::new()
                    .name(format!("metaseg-conn-{accepted}"))
                    .spawn(move || connection_loop(stream, &shared, &job_tx))
                    .expect("spawning a connection thread succeeds");
                accepted += 1;
                connections.push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Reap finished connection threads while idle so a
                // long-running server with connection churn does not
                // accumulate one JoinHandle per connection ever accepted.
                reap_finished(&mut connections);
                thread::sleep(shared.config.poll_interval());
            }
            // Transient accept errors (aborted handshakes) must not kill
            // the server.
            Err(_) => thread::sleep(shared.config.poll_interval()),
        }
    }
    connections
}

/// Joins and drops every connection thread that has already exited.
fn reap_finished(connections: &mut Vec<JoinHandle<()>>) {
    let mut index = 0;
    while index < connections.len() {
        if connections[index].is_finished() {
            let _ = connections.swap_remove(index).join();
        } else {
            index += 1;
        }
    }
}

/// Peeks the first byte of the next message, tolerating read timeouts (used
/// to poll the shutdown flag). Returns `None` on EOF, a fatal transport
/// error, or shutdown — the connection then closes.
fn peek_byte_polled(reader: &mut BufReader<TcpStream>, shared: &Shared) -> Option<u8> {
    loop {
        match reader.fill_buf() {
            Ok([]) => return None,
            Ok(buffered) => return Some(buffered[0]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

/// Fills `buffer` completely, tolerating read timeouts. Returns `None` on
/// EOF, a fatal transport error, or shutdown mid-read.
fn read_exact_polled(
    reader: &mut BufReader<TcpStream>,
    buffer: &mut [u8],
    shared: &Shared,
) -> Option<()> {
    let mut filled = 0;
    while filled < buffer.len() {
        match reader.read(&mut buffer[filled..]) {
            Ok(0) => return None,
            Ok(read) => filled += read,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    Some(())
}

/// Reads and discards exactly `count` bytes — how the binary path
/// resynchronises after a frame whose header was readable but invalid.
fn skip_polled(reader: &mut BufReader<TcpStream>, count: usize, shared: &Shared) -> Option<()> {
    let mut scratch = [0u8; 8192];
    let mut remaining = count;
    while remaining > 0 {
        let chunk = remaining.min(scratch.len());
        read_exact_polled(reader, &mut scratch[..chunk], shared)?;
        remaining -= chunk;
    }
    Some(())
}

/// Reads one line, tolerating read timeouts (used to poll the shutdown
/// flag). Returns `None` on EOF, a fatal transport error, or a line
/// exceeding the configured size cap (the transport-level analogue of the
/// JSON parser's nesting-depth cap: a peer that never sends a newline must
/// not grow server memory without bound).
///
/// Reads raw bytes via `read_until`, *not* `read_line`: `read_line`'s UTF-8
/// guard truncates its output when a read error interrupts the stream
/// mid-multi-byte-character, silently losing bytes already consumed from
/// the socket — a timeout landing inside a multi-byte camera name would
/// corrupt a well-formed request. Bytes survive timeouts here; the caller
/// validates UTF-8 once, after the newline arrived, and answers a typed
/// `bad-request` on invalid sequences (never silent replacement, never a
/// dropped byte).
fn read_line_polled(
    reader: &mut BufReader<TcpStream>,
    buffer: &mut Vec<u8>,
    shared: &Shared,
) -> Option<()> {
    buffer.clear();
    loop {
        match reader.read_until(b'\n', buffer) {
            Ok(0) => return None,
            Ok(_) => {
                // Timeouts can split a line: keep reading until the
                // newline actually arrived.
                if buffer.ends_with(b"\n") {
                    return Some(());
                }
                if buffer.len() > shared.config.max_line_bytes {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return None;
                }
                if buffer.len() > shared.config.max_line_bytes {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

/// Outcome of reading one binary frame off the stream.
enum BinaryRead {
    /// A checksum-verified frame of an open session: submit its raw payload.
    Frame { session: u64, payload: ProbPayload },
    /// A frame that was skipped or failed decoding: answer the typed
    /// response, keep the connection.
    Reject(Response),
    /// The stream cannot be resynchronised (EOF, transport error, or a
    /// declared payload beyond the size cap): answer if possible, then
    /// close the connection.
    Drop(Option<WireError>),
}

fn bad_request(message: impl ToString) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: message.to_string(),
    }
}

/// Reads one binary frame (the magic byte has been peeked, not consumed).
///
/// The header is fixed-size and carries the payload length, so even frames
/// that fail validation can usually be skipped exactly; only payloads
/// declared beyond the cap force a disconnect (reading them would defeat
/// the memory bound, and skipping terabytes is indistinguishable from a
/// hung connection).
///
/// Frames that are doomed regardless of their contents — binary framing not
/// negotiated, or a session id (carried in the header) that is not open on
/// this connection — are rejected *before* the payload is read: the bytes
/// are skipped in a fixed scratch buffer, so a peer cannot make the server
/// allocate, checksum or float-decode work it will throw away.
fn read_binary_message(
    reader: &mut BufReader<TcpStream>,
    connection: &Connection,
    shared: &Shared,
) -> BinaryRead {
    let mut header_bytes = [0u8; BINARY_HEADER_LEN];
    if read_exact_polled(reader, &mut header_bytes, shared).is_none() {
        return BinaryRead::Drop(None);
    }
    let cap = shared.config.max_line_bytes as u64;
    let validated = BinaryFrameHeader::parse(&header_bytes)
        .and_then(|header| header.checked_payload_len(cap).map(|len| (header, len)));
    match validated {
        Ok((header, payload_len)) => {
            let rejection = if !connection.binary_frames {
                Some(bad_request(
                    "binary framing was not negotiated on this connection \
                     (send the negotiate op first)",
                ))
            } else if !connection.sessions.contains_key(&header.session) {
                Some(unknown_session_error(header.session))
            } else {
                None
            };
            if let Some(response) = rejection {
                if skip_polled(reader, payload_len, shared).is_none() {
                    return BinaryRead::Drop(None);
                }
                return BinaryRead::Reject(response);
            }
            let mut payload = vec![0u8; payload_len];
            if read_exact_polled(reader, &mut payload, shared).is_none() {
                return BinaryRead::Drop(None);
            }
            // Zero-copy ingest: verify the checksum, then hand the wire
            // bytes to the worker unchanged — dequantization happens in the
            // worker, straight into the session's extraction scratch.
            match header.verified_payload(payload) {
                Ok(payload) => BinaryRead::Frame {
                    session: header.session,
                    payload,
                },
                Err(e) => BinaryRead::Reject(bad_request(e)),
            }
        }
        Err(e) => {
            // The declared length sits at a fixed offset whatever else is
            // wrong with the header; use it to resynchronise if it is
            // bounded.
            let declared = wire::declared_payload_len(&header_bytes);
            if declared <= cap && skip_polled(reader, declared as usize, shared).is_some() {
                BinaryRead::Reject(bad_request(e))
            } else {
                BinaryRead::Drop(Some(e))
            }
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>, job_tx: &SyncSender<Job>) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(shared.config.poll_interval()))
        .is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut connection = Connection {
        sessions: HashMap::new(),
        binary_frames: false,
        dispersion: DispersionPrecision::F64,
    };
    let mut line_bytes = Vec::new();

    loop {
        let Some(first_byte) = peek_byte_polled(&mut reader, shared) else {
            return;
        };
        let (response, close_after_reply) = if first_byte == BINARY_FRAME_MAGIC {
            match read_binary_message(&mut reader, &connection, shared) {
                BinaryRead::Frame { session, payload } => {
                    shared.binary_frames.fetch_add(1, Ordering::Relaxed);
                    (
                        submit_frame(
                            session,
                            JobPayload::Encoded(payload),
                            &connection,
                            shared,
                            job_tx,
                        ),
                        false,
                    )
                }
                BinaryRead::Reject(response) => (response, false),
                BinaryRead::Drop(Some(e)) => (bad_request(e), true),
                BinaryRead::Drop(None) => return,
            }
        } else {
            let Some(()) = read_line_polled(&mut reader, &mut line_bytes, shared) else {
                return;
            };
            // Strict UTF-8 at the trust boundary: lossy replacement would
            // silently alter string fields (e.g. a camera name) inside an
            // otherwise well-formed request.
            let response = match std::str::from_utf8(&line_bytes) {
                Ok(line) => match Request::decode(line.trim_end()) {
                    Ok(request) => handle_request(request, &mut connection, shared, job_tx),
                    Err(e) => bad_request(e),
                },
                Err(e) => bad_request(format_args!("request line is not valid UTF-8: {e}")),
            };
            (response, false)
        };
        if writeln!(writer, "{}", response.encode()).is_err() {
            return;
        }
        if writer.flush().is_err() {
            return;
        }
        if close_after_reply {
            return;
        }
    }
}

fn handle_request(
    request: Request,
    connection: &mut Connection,
    shared: &Arc<Shared>,
    job_tx: &SyncSender<Job>,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Negotiate { format, dispersion } => {
            // Binary framing is a per-connection capability switch; control
            // operations and responses stay JSON lines either way. The
            // payload encoding of each binary frame is self-describing, so
            // the server only needs to remember "binary allowed". The
            // dispersion precision applies to every frame submitted after
            // this confirmation, whatever its format.
            connection.binary_frames = matches!(format, FrameFormat::Binary(_));
            connection.dispersion = dispersion;
            Response::Negotiated { format, dispersion }
        }
        Request::Open { model, camera } => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return shutting_down_error();
            }
            let Some(entry) = shared.registry.get(&model) else {
                return Response::Error {
                    code: ErrorCode::UnknownModel,
                    message: format!("no model named `{model}` is registered"),
                };
            };
            let engine = entry.open_stream();
            let series_length = engine.series_length();
            let session = shared.next_session.fetch_add(1, Ordering::Relaxed);
            connection
                .sessions
                .insert(session, Arc::new(Mutex::new(Session { engine, camera })));
            shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
            Response::Opened {
                session,
                series_length,
            }
        }
        Request::Frame { session, probs } => submit_frame(
            session,
            JobPayload::Decoded(probs),
            connection,
            shared,
            job_tx,
        ),
        Request::Stats { session } => match connection.sessions.get(&session).cloned() {
            Some(state) => match state.lock() {
                Ok(guard) => Response::Stats {
                    session,
                    stats: guard.engine.session_stats(),
                },
                Err(_) => {
                    // Dead session: evict it so later requests get the
                    // honest unknown-session answer.
                    connection.sessions.remove(&session);
                    session_poisoned_error(session)
                }
            },
            None => unknown_session_error(session),
        },
        Request::Close { session } => match connection.sessions.remove(&session) {
            Some(state) => match state.lock() {
                Ok(guard) => Response::Closed {
                    session,
                    stats: guard.engine.session_stats(),
                },
                // Evicted either way; the final statistics are unknowable.
                Err(_) => session_poisoned_error(session),
            },
            None => unknown_session_error(session),
        },
    }
}

/// Submits one frame payload to the worker pool and waits for its verdicts —
/// the shared tail of the JSON and binary submission paths.
fn submit_frame(
    session: u64,
    payload: JobPayload,
    connection: &Connection,
    shared: &Arc<Shared>,
    job_tx: &SyncSender<Job>,
) -> Response {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return shutting_down_error();
    }
    let Some(state) = connection.sessions.get(&session) else {
        return unknown_session_error(session);
    };
    // Decoded payloads cross a trust boundary: an inconsistent shape would
    // panic deep inside metric extraction. (The binary path validates shape
    // against byte count before the job is built.)
    if let JobPayload::Decoded(probs) = &payload {
        if !probs.shape_consistent() {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: "frame payload has an inconsistent shape".to_string(),
            };
        }
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        session_id: session,
        session: Arc::clone(state),
        payload,
        dispersion: connection.dispersion,
        reply: reply_tx,
    };
    // Count the job before handing it over: the worker decrements after
    // picking it up, so incrementing afterwards could race the counter
    // below zero.
    let depth = shared.queue_len.fetch_add(1, Ordering::Relaxed) + 1;
    shared.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    match job_tx.try_send(job) {
        // The worker pool owns the job now; relay its verdicts in request
        // order.
        Ok(()) => reply_rx.recv().unwrap_or_else(|_| Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "worker pool exited before the frame was processed".to_string(),
        }),
        Err(TrySendError::Full(_)) => {
            shared.queue_len.fetch_sub(1, Ordering::Relaxed);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            Response::Error {
                code: ErrorCode::Backpressure,
                message: format!(
                    "inference queue is full ({} jobs); retry after backing off",
                    shared.config.queue_depth.max(1)
                ),
            }
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.queue_len.fetch_sub(1, Ordering::Relaxed);
            shutting_down_error()
        }
    }
}

fn shutting_down_error() -> Response {
    Response::Error {
        code: ErrorCode::ShuttingDown,
        message: "server is shutting down".to_string(),
    }
}

fn unknown_session_error(session: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownSession,
        message: format!("session {session} is not open on this connection"),
    }
}

/// One session's slice of a drained micro-batch: its jobs, in arrival order.
struct SessionBatch {
    session_id: u64,
    session: Arc<Mutex<Session>>,
    jobs: Vec<(JobPayload, DispersionPrecision, Sender<Response>)>,
}

/// Processes one session group: lock once, push the frames in order through
/// the engine, reply per frame.
///
/// Decoded frames go through [`MetaSegStream::push_frame`]; encoded wire
/// payloads go through [`MetaSegStream::push_payload`], which dequantizes
/// the bytes directly into the session's extraction scratch (pinned
/// bit-identical at f64 precision by the engine's own tests, so the two
/// paths can never disagree on a verdict).
fn process_session_batch(batch: SessionBatch, shared: &Shared) {
    let SessionBatch {
        session_id,
        session,
        jobs,
    } = batch;
    let batched = jobs.len();
    let Ok(mut session) = session.lock() else {
        // A previous frame of this session panicked mid-inference: the
        // engine state is unknown, so refuse to serve it rather than risk
        // silently-wrong verdicts.
        for (_, _, reply) in jobs {
            let _ = reply.send(session_poisoned_error(session_id));
        }
        return;
    };
    if shared.config.synthetic_delay_ms > 0 {
        // The synthetic delay models *per-frame* model cost, so a group of
        // n frames sleeps n times the configured delay — identical to the
        // unbatched schedule; batching only parallelises across sessions.
        thread::sleep(Duration::from_millis(
            shared.config.synthetic_delay_ms * batched as u64,
        ));
    }
    let mut processed = 0usize;
    let mut responses = Vec::with_capacity(batched);
    for (payload, dispersion, reply) in jobs {
        let response = match payload {
            JobPayload::Decoded(probs) => {
                let frame = Frame::unlabeled(
                    FrameId::new(session_id as usize, session.engine.frames_seen()),
                    probs,
                );
                let verdicts = session.engine.push_frame(&frame);
                processed += 1;
                Response::Verdicts {
                    session: session_id,
                    frame: verdicts.frame,
                    verdicts: verdicts.verdicts,
                }
            }
            JobPayload::Encoded(payload) => {
                match session.engine.push_payload(&payload, dispersion) {
                    Ok(verdicts) => {
                        processed += 1;
                        Response::Verdicts {
                            session: session_id,
                            frame: verdicts.frame,
                            verdicts: verdicts.verdicts,
                        }
                    }
                    // The engine state is untouched on a codec error; the
                    // session keeps serving subsequent frames.
                    Err(e) => bad_request(e),
                }
            }
        };
        responses.push((reply, response));
    }
    drop(session);
    shared
        .frames_processed
        .fetch_add(processed, Ordering::Relaxed);
    for (reply, response) in responses {
        // The connection may have gone away mid-flight; dropping the
        // verdicts is then the right thing.
        let _ = reply.send(response);
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, shared: &Arc<Shared>) {
    let batch_max = shared.config.batch_max.max(1);
    loop {
        // Hold the queue lock only to drain: block for the first job, then
        // opportunistically take whatever is already queued, up to the
        // batch cap. Inference runs unlocked so the pool actually
        // parallelises across sessions.
        let jobs: Vec<Job> = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            match guard.recv() {
                Ok(first) => {
                    let mut jobs = vec![first];
                    while jobs.len() < batch_max {
                        match guard.try_recv() {
                            Ok(job) => jobs.push(job),
                            Err(_) => break,
                        }
                    }
                    jobs
                }
                // Every sender is gone and the queue is drained: shutdown.
                Err(_) => return,
            }
        };
        shared.queue_len.fetch_sub(jobs.len(), Ordering::Relaxed);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.peak_batch.fetch_max(jobs.len(), Ordering::Relaxed);

        // Group by session, preserving arrival order within each group, so
        // one session's frames stay strictly ordered while distinct
        // sessions fan out across the rayon pool. A linear scan is right:
        // batches are small (≤ batch_max).
        let mut groups: Vec<SessionBatch> = Vec::new();
        for job in jobs {
            match groups
                .iter_mut()
                .find(|group| group.session_id == job.session_id)
            {
                Some(group) => group.jobs.push((job.payload, job.dispersion, job.reply)),
                None => groups.push(SessionBatch {
                    session_id: job.session_id,
                    session: job.session,
                    jobs: vec![(job.payload, job.dispersion, job.reply)],
                }),
            }
        }
        if groups.len() == 1 {
            // The common lightly-loaded case: skip the parallel dispatch.
            let group = groups.pop().expect("length checked above");
            process_session_batch(group, shared);
        } else {
            let () = groups
                .into_par_iter()
                .map(|group| process_session_batch(group, shared))
                .collect();
        }
    }
}
