//! The multi-camera TCP inference server.
//!
//! Architecture (one process, three thread roles):
//!
//! * **Acceptor** — accepts TCP connections in a non-blocking poll loop and
//!   spawns one connection thread each. It never does inference and never
//!   blocks on the worker queue, so accepting stays O(1) under load.
//! * **Connection threads** — own their camera *sessions* (session id →
//!   [`MetaSegStream`] engine), decode request lines, and submit frame jobs
//!   to the worker pool, relaying the verdicts back in request order. A
//!   malformed line is answered with a typed `bad-request` error; the
//!   connection survives.
//! * **Worker pool** — `workers` threads draining a bounded job queue. When
//!   the queue is full the submitting connection immediately answers
//!   `backpressure` instead of blocking or buffering unboundedly — the
//!   overload signal a fleet balancer needs.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) stops the acceptor,
//! rejects new sessions, lets connection threads finish their in-flight
//! request, then drains every queued job before the workers exit — no
//! accepted frame is ever silently dropped.

use crate::protocol::{ErrorCode, Request, Response};
use crate::registry::ModelRegistry;
use metaseg::stream::MetaSegStream;
use metaseg_data::{Frame, FrameId, ProbMap};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs of a server instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Worker threads draining the inference queue.
    pub workers: usize,
    /// Bounded depth of the inference queue; submissions beyond it are
    /// rejected with [`ErrorCode::Backpressure`].
    pub queue_depth: usize,
    /// Artificial per-frame inference delay in milliseconds — a loadtest /
    /// test knob emulating heavier models; `0` (the default) for real
    /// serving.
    pub synthetic_delay_ms: u64,
    /// Poll interval of the acceptor loop and the connection-thread read
    /// timeout; bounds how quickly shutdown is observed.
    pub poll_interval_ms: u64,
    /// Maximum accepted request-line length in bytes; a connection whose
    /// line grows past this without a newline is dropped (bounds per-
    /// connection memory against peers that never terminate a line).
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            synthetic_delay_ms: 0,
            poll_interval_ms: 25,
            // Generous for softmax payloads (a 500x300x19 frame is ~40 MiB
            // of JSON) while still bounding a hostile newline-free stream.
            max_line_bytes: 256 << 20,
        }
    }
}

impl ServerConfig {
    fn poll_interval(&self) -> Duration {
        Duration::from_millis(self.poll_interval_ms.max(1))
    }
}

/// Lifetime counters of a server, snapshot via [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: usize,
    /// Sessions opened.
    pub sessions_opened: usize,
    /// Frame jobs fully processed.
    pub frames_processed: usize,
    /// Frame submissions rejected with `backpressure`.
    pub rejected: usize,
    /// Largest queue occupancy ever observed.
    pub peak_queue_depth: usize,
}

/// State shared by every thread of one server.
struct Shared {
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    shutting_down: AtomicBool,
    next_session: AtomicU64,
    queue_len: AtomicUsize,
    connections: AtomicUsize,
    sessions_opened: AtomicUsize,
    frames_processed: AtomicUsize,
    rejected: AtomicUsize,
    peak_queue_depth: AtomicUsize,
}

/// One camera session: the engine plus bookkeeping labels.
struct Session {
    engine: MetaSegStream,
    #[allow(dead_code)]
    camera: String,
}

/// A queued inference job: one frame of one session plus the reply channel
/// of the submitting connection thread.
struct Job {
    session_id: u64,
    session: Arc<Mutex<Session>>,
    probs: ProbMap,
    reply: Sender<Response>,
}

/// A running server; dropping the handle aborts without draining, calling
/// [`ServerHandle::shutdown`] drains gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    job_tx: Option<SyncSender<Job>>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
}

/// Entry point: bind, spawn, serve.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and spawns the
    /// acceptor and worker threads. Returns immediately; the server runs
    /// until [`ServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when binding fails.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            registry,
            config,
            shutting_down: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            queue_len: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            sessions_opened: AtomicUsize::new(0),
            frames_processed: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            peak_queue_depth: AtomicUsize::new(0),
        });

        let workers = config.workers.max(1);
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|index| {
                let rx = Arc::clone(&job_rx);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("metaseg-worker-{index}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawning a worker thread succeeds")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let job_tx = job_tx.clone();
            thread::Builder::new()
                .name("metaseg-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &shared, &job_tx))
                .expect("spawning the acceptor thread succeeds")
        };

        Ok(ServerHandle {
            addr,
            shared,
            job_tx: Some(job_tx),
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }
}

impl ServerHandle {
    /// The address the server actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            sessions_opened: self.shared.sessions_opened.load(Ordering::Relaxed),
            frames_processed: self.shared.frames_processed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            peak_queue_depth: self.shared.peak_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, let every connection finish its
    /// in-flight request, drain all queued jobs, join every thread, and
    /// return the final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let connection_threads = acceptor.join().expect("acceptor thread never panics");
            for handle in connection_threads {
                let _ = handle.join();
            }
        }
        // All connection threads are gone, so the acceptor-side sender is
        // the last one: dropping it lets workers drain the queue and exit.
        drop(self.job_tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    job_tx: &SyncSender<Job>,
) -> Vec<JoinHandle<()>> {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    let mut accepted = 0usize;
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let job_tx = job_tx.clone();
                let handle = thread::Builder::new()
                    .name(format!("metaseg-conn-{accepted}"))
                    .spawn(move || connection_loop(stream, &shared, &job_tx))
                    .expect("spawning a connection thread succeeds");
                accepted += 1;
                connections.push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Reap finished connection threads while idle so a
                // long-running server with connection churn does not
                // accumulate one JoinHandle per connection ever accepted.
                reap_finished(&mut connections);
                thread::sleep(shared.config.poll_interval());
            }
            // Transient accept errors (aborted handshakes) must not kill
            // the server.
            Err(_) => thread::sleep(shared.config.poll_interval()),
        }
    }
    connections
}

/// Joins and drops every connection thread that has already exited.
fn reap_finished(connections: &mut Vec<JoinHandle<()>>) {
    let mut index = 0;
    while index < connections.len() {
        if connections[index].is_finished() {
            let _ = connections.swap_remove(index).join();
        } else {
            index += 1;
        }
    }
}

/// Reads one line, tolerating read timeouts (used to poll the shutdown
/// flag). Returns `None` on EOF, a fatal transport error, or a line
/// exceeding the configured size cap (the transport-level analogue of the
/// JSON parser's nesting-depth cap: a peer that never sends a newline must
/// not grow server memory without bound).
fn read_line_polled(
    reader: &mut BufReader<TcpStream>,
    buffer: &mut String,
    shared: &Shared,
) -> Option<()> {
    buffer.clear();
    loop {
        match reader.read_line(buffer) {
            Ok(0) => return None,
            Ok(_) => {
                // Timeouts can split a line: keep reading until the
                // newline actually arrived.
                if buffer.ends_with('\n') {
                    return Some(());
                }
                if buffer.len() > shared.config.max_line_bytes {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return None;
                }
                if buffer.len() > shared.config.max_line_bytes {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>, job_tx: &SyncSender<Job>) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(shared.config.poll_interval()))
        .is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut sessions: HashMap<u64, Arc<Mutex<Session>>> = HashMap::new();
    let mut line = String::new();

    while read_line_polled(&mut reader, &mut line, shared).is_some() {
        let response = match Request::decode(line.trim_end()) {
            Ok(request) => handle_request(request, &mut sessions, shared, job_tx),
            Err(e) => Response::Error {
                code: ErrorCode::BadRequest,
                message: e.to_string(),
            },
        };
        if writeln!(writer, "{}", response.encode()).is_err() {
            return;
        }
        if writer.flush().is_err() {
            return;
        }
    }
}

fn handle_request(
    request: Request,
    sessions: &mut HashMap<u64, Arc<Mutex<Session>>>,
    shared: &Arc<Shared>,
    job_tx: &SyncSender<Job>,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Open { model, camera } => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return shutting_down_error();
            }
            let Some(entry) = shared.registry.get(&model) else {
                return Response::Error {
                    code: ErrorCode::UnknownModel,
                    message: format!("no model named `{model}` is registered"),
                };
            };
            let engine = entry.open_stream();
            let series_length = engine.series_length();
            let session = shared.next_session.fetch_add(1, Ordering::Relaxed);
            sessions.insert(session, Arc::new(Mutex::new(Session { engine, camera })));
            shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
            Response::Opened {
                session,
                series_length,
            }
        }
        Request::Frame { session, probs } => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return shutting_down_error();
            }
            let Some(state) = sessions.get(&session) else {
                return unknown_session_error(session);
            };
            // Decoded payloads cross a trust boundary: an inconsistent
            // shape would panic deep inside metric extraction.
            if !probs.shape_consistent() {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "frame payload has an inconsistent shape".to_string(),
                };
            }
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = Job {
                session_id: session,
                session: Arc::clone(state),
                probs,
                reply: reply_tx,
            };
            // Count the job before handing it over: the worker decrements
            // after picking it up, so incrementing afterwards could race the
            // counter below zero.
            let depth = shared.queue_len.fetch_add(1, Ordering::Relaxed) + 1;
            shared.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
            match job_tx.try_send(job) {
                // The worker pool owns the job now; relay its verdicts in
                // request order.
                Ok(()) => reply_rx.recv().unwrap_or_else(|_| Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "worker pool exited before the frame was processed".to_string(),
                }),
                Err(TrySendError::Full(_)) => {
                    shared.queue_len.fetch_sub(1, Ordering::Relaxed);
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    Response::Error {
                        code: ErrorCode::Backpressure,
                        message: format!(
                            "inference queue is full ({} jobs); retry after backing off",
                            shared.config.queue_depth.max(1)
                        ),
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    shared.queue_len.fetch_sub(1, Ordering::Relaxed);
                    shutting_down_error()
                }
            }
        }
        Request::Stats { session } => match sessions.get(&session) {
            Some(state) => Response::Stats {
                session,
                stats: state
                    .lock()
                    .expect("session lock never poisoned")
                    .engine
                    .session_stats(),
            },
            None => unknown_session_error(session),
        },
        Request::Close { session } => match sessions.remove(&session) {
            Some(state) => Response::Closed {
                session,
                stats: state
                    .lock()
                    .expect("session lock never poisoned")
                    .engine
                    .session_stats(),
            },
            None => unknown_session_error(session),
        },
    }
}

fn shutting_down_error() -> Response {
    Response::Error {
        code: ErrorCode::ShuttingDown,
        message: "server is shutting down".to_string(),
    }
}

fn unknown_session_error(session: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownSession,
        message: format!("session {session} is not open on this connection"),
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, shared: &Arc<Shared>) {
    loop {
        // Hold the lock only to pop one job; inference runs unlocked so the
        // pool actually parallelises across sessions.
        let job = {
            let guard = rx.lock().expect("worker queue lock never poisoned");
            guard.recv()
        };
        let Ok(job) = job else {
            // Every sender is gone and the queue is drained: shutdown.
            return;
        };
        shared.queue_len.fetch_sub(1, Ordering::Relaxed);
        if shared.config.synthetic_delay_ms > 0 {
            thread::sleep(Duration::from_millis(shared.config.synthetic_delay_ms));
        }
        let response = {
            let mut session = job.session.lock().expect("session lock never poisoned");
            let frame_index = session.engine.frames_seen();
            let frame = Frame::unlabeled(
                FrameId::new(job.session_id as usize, frame_index),
                job.probs,
            );
            let verdicts = session.engine.push_frame(&frame);
            Response::Verdicts {
                session: job.session_id,
                frame: verdicts.frame,
                verdicts: verdicts.verdicts,
            }
        };
        shared.frames_processed.fetch_add(1, Ordering::Relaxed);
        // The connection may have gone away mid-flight; dropping the
        // verdicts is then the right thing.
        let _ = job.reply.send(response);
    }
}
