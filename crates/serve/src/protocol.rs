//! The JSON-lines wire protocol of the inference service.
//!
//! Every message is one compact JSON object per line. Requests carry an
//! `"op"` discriminator, successful responses an `"ok"` discriminator, and
//! error responses an `"err"` code plus a human-readable `"message"`:
//!
//! ```text
//! -> {"op":"open","model":"default","camera":"cam-0"}
//! <- {"ok":"opened","session":1,"series_length":3}
//! -> {"op":"frame","session":1,"probs":{...softmax field...}}
//! <- {"ok":"verdicts","session":1,"frame":0,"verdicts":[...]}
//! -> {"op":"close","session":1}
//! <- {"ok":"closed","session":1,"stats":{...}}
//! ```
//!
//! Payload types ([`ProbMap`], [`SegmentVerdict`], [`SessionStats`]) use
//! their derived serde encodings, so a served verdict is *bit-identical* to
//! the in-process one after the round-trip (floats travel in shortest
//! round-trip form).
//!
//! Decoding is total: any malformed line becomes a [`ProtocolError`], which
//! the server answers with [`ErrorCode::BadRequest`] instead of dropping the
//! connection — one garbled camera payload must not kill a session.

use metaseg::stream::{SegmentVerdict, SessionStats};
use metaseg::DispersionPrecision;
use metaseg_data::{ProbEncoding, ProbMap};
use serde::{Deserialize, DeserializeError, Serialize, Value};
use std::fmt;

/// The frame-submission format of a connection.
///
/// Connections start in [`FrameFormat::Json`] (every frame is a JSON `frame`
/// line — the backward-compatible default). A client that wants the binary
/// fast path sends [`Request::Negotiate`]; once the server confirms with
/// [`Response::Negotiated`], the client may submit frames as length-prefixed
/// binary frames (see [`crate::wire`]) on the same connection. Control
/// operations and every response stay JSON lines in either mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFormat {
    /// JSON-lines `frame` submissions (default, always accepted).
    Json,
    /// Binary frame submissions with the given payload encoding.
    Binary(ProbEncoding),
}

impl FrameFormat {
    /// The wire spelling of the format.
    pub fn as_str(self) -> &'static str {
        match self {
            FrameFormat::Json => "json",
            FrameFormat::Binary(ProbEncoding::F64) => "binary-f64",
            FrameFormat::Binary(ProbEncoding::F32) => "binary-f32",
            FrameFormat::Binary(ProbEncoding::U16) => "binary-u16",
        }
    }

    /// Parses the wire spelling.
    pub fn from_str_opt(text: &str) -> Option<Self> {
        Some(match text {
            "json" => FrameFormat::Json,
            "binary-f64" => FrameFormat::Binary(ProbEncoding::F64),
            "binary-f32" => FrameFormat::Binary(ProbEncoding::F32),
            "binary-u16" => FrameFormat::Binary(ProbEncoding::U16),
            _ => return None,
        })
    }

    /// Whether frame payloads decode to the exact field that was encoded
    /// (and therefore yield bit-identical verdicts to in-process serving).
    pub fn is_lossless(self) -> bool {
        match self {
            FrameFormat::Json => true,
            FrameFormat::Binary(encoding) => encoding.is_lossless(),
        }
    }
}

impl fmt::Display for FrameFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a camera session served by the named model.
    Open {
        /// Registry name of the model that should serve the session.
        model: String,
        /// Free-form camera label, echoed in server-side statistics.
        camera: String,
    },
    /// Submits the next frame of a session (a decoded softmax field).
    Frame {
        /// Session the frame belongs to.
        session: u64,
        /// The frame's softmax field.
        probs: ProbMap,
    },
    /// Requests the session's lifetime statistics.
    Stats {
        /// Session to report on.
        session: u64,
    },
    /// Closes a session, returning its final statistics.
    Close {
        /// Session to close.
        session: u64,
    },
    /// Re-attaches this connection to a session opened (and possibly
    /// orphaned) by an earlier connection. Answered with
    /// [`Response::Resumed`] carrying the number of frames the server has
    /// applied, so a reconnecting client knows exactly where to pick up
    /// without double-applying an in-flight frame.
    Resume {
        /// Session to re-attach to.
        session: u64,
    },
    /// Liveness probe; answered with [`Response::Pong`] without touching any
    /// session.
    Ping,
    /// Negotiates the connection's frame-submission format. Answered with
    /// [`Response::Negotiated`] on success; servers predating binary framing
    /// answer `bad-request` (unknown op), which a client treats as "JSON
    /// only".
    Negotiate {
        /// The format the client wants to submit frames in.
        format: FrameFormat,
        /// The dispersion-scan precision the client asks the server to run.
        /// Encoded on the wire only when it deviates from the
        /// [`DispersionPrecision::F64`] default, so negotiation lines from
        /// older clients (and to older servers) are unchanged.
        dispersion: DispersionPrecision,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A session was opened.
    Opened {
        /// Server-assigned session id (unique per server lifetime).
        session: u64,
        /// Time-series depth of the serving engine.
        series_length: usize,
    },
    /// Per-segment verdicts of one submitted frame.
    Verdicts {
        /// Session the verdicts belong to.
        session: u64,
        /// Index of the frame within the session.
        frame: usize,
        /// One verdict per tracked segment, in record order.
        verdicts: Vec<SegmentVerdict>,
    },
    /// Session statistics snapshot.
    Stats {
        /// Session reported on.
        session: u64,
        /// The statistics snapshot.
        stats: SessionStats,
    },
    /// A session was closed.
    Closed {
        /// The closed session.
        session: u64,
        /// Final statistics of the session.
        stats: SessionStats,
    },
    /// A session was re-attached to this connection.
    Resumed {
        /// The resumed session.
        session: u64,
        /// Frames the server has applied to the session so far; the next
        /// submitted frame is frame `frames`.
        frames: usize,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// The connection's frame-submission format was switched.
    Negotiated {
        /// The format now in effect for this connection.
        format: FrameFormat,
        /// The dispersion precision now in effect for this connection
        /// (omitted on the wire when it is the [`DispersionPrecision::F64`]
        /// default).
        dispersion: DispersionPrecision,
    },
    /// A typed error. The connection stays usable afterwards.
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

/// Machine-readable error classes of [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The worker queue is full; retry after draining. The request had no
    /// effect.
    Backpressure,
    /// The requested model is not in the registry.
    UnknownModel,
    /// The session id is not open on this connection.
    UnknownSession,
    /// The request line could not be decoded or carried an inconsistent
    /// payload.
    BadRequest,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// The server is at its connection limit and shed this connection at
    /// accept time. Back off and retry; nothing was processed.
    Overloaded,
    /// The server hit an internal failure serving this session (e.g. a
    /// panic mid-inference left the engine in an unknown state). The
    /// session is dead; open a new one. The connection stays usable.
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling.
    pub fn from_str_opt(text: &str) -> Option<Self> {
        Some(match text {
            "backpressure" => ErrorCode::Backpressure,
            "unknown-model" => ErrorCode::UnknownModel,
            "unknown-session" => ErrorCode::UnknownSession,
            "bad-request" => ErrorCode::BadRequest,
            "shutting-down" => ErrorCode::ShuttingDown,
            "overloaded" => ErrorCode::Overloaded,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A wire message that could not be decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError(String);

impl ProtocolError {
    fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

impl From<DeserializeError> for ProtocolError {
    fn from(value: DeserializeError) -> Self {
        Self::new(value.to_string())
    }
}

fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn required<'a>(value: &'a Value, key: &str) -> Result<&'a Value, ProtocolError> {
    value
        .get(key)
        .ok_or_else(|| ProtocolError::new(format!("missing field `{key}`")))
}

fn u64_field(value: &Value, key: &str) -> Result<u64, ProtocolError> {
    required(value, key)?
        .as_u64()
        .ok_or_else(|| ProtocolError::new(format!("field `{key}` must be a non-negative integer")))
}

/// Optional `"dispersion"` field of negotiation messages: an absent key is
/// the f64 default, so pre-fast-path peers interoperate unchanged.
fn dispersion_field(value: &Value) -> Result<DispersionPrecision, ProtocolError> {
    match value.get("dispersion") {
        None => Ok(DispersionPrecision::F64),
        Some(field) => {
            let text = field
                .as_str()
                .ok_or_else(|| ProtocolError::new("field `dispersion` must be a string"))?;
            DispersionPrecision::from_name(text)
                .ok_or_else(|| ProtocolError::new(format!("unknown dispersion precision `{text}`")))
        }
    }
}

fn string_field(value: &Value, key: &str) -> Result<String, ProtocolError> {
    Ok(required(value, key)?
        .as_str()
        .ok_or_else(|| ProtocolError::new(format!("field `{key}` must be a string")))?
        .to_string())
}

impl Request {
    /// Renders a frame submission from borrowed parts — the hot-path
    /// encoder: submitting a frame must not require cloning the softmax
    /// field into an owned [`Request`] first.
    pub fn encode_frame(session: u64, probs: &ProbMap) -> String {
        let value = object(vec![
            ("op", Value::String("frame".into())),
            ("session", session.serialize()),
            ("probs", probs.serialize()),
        ]);
        serde_json::to_string(&value).expect("document model serialization is infallible")
    }

    /// Renders the request as one compact JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let value = match self {
            Request::Open { model, camera } => object(vec![
                ("op", Value::String("open".into())),
                ("model", model.serialize()),
                ("camera", camera.serialize()),
            ]),
            Request::Frame { session, probs } => return Self::encode_frame(*session, probs),
            Request::Stats { session } => object(vec![
                ("op", Value::String("stats".into())),
                ("session", session.serialize()),
            ]),
            Request::Close { session } => object(vec![
                ("op", Value::String("close".into())),
                ("session", session.serialize()),
            ]),
            Request::Resume { session } => object(vec![
                ("op", Value::String("resume".into())),
                ("session", session.serialize()),
            ]),
            Request::Ping => object(vec![("op", Value::String("ping".into()))]),
            Request::Negotiate { format, dispersion } => {
                let mut entries = vec![
                    ("op", Value::String("negotiate".into())),
                    ("frames", Value::String(format.as_str().into())),
                ];
                if *dispersion != DispersionPrecision::F64 {
                    entries.push(("dispersion", Value::String(dispersion.as_str().into())));
                }
                object(entries)
            }
        };
        serde_json::to_string(&value).expect("document model serialization is infallible")
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on malformed JSON, an unknown `op`, or a
    /// missing/mistyped field; the server answers these with
    /// [`ErrorCode::BadRequest`] rather than closing the connection.
    pub fn decode(line: &str) -> Result<Self, ProtocolError> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| ProtocolError::new(e.to_string()))?;
        let op = string_field(&value, "op")?;
        match op.as_str() {
            "open" => Ok(Request::Open {
                model: string_field(&value, "model")?,
                camera: string_field(&value, "camera")?,
            }),
            "frame" => Ok(Request::Frame {
                session: u64_field(&value, "session")?,
                probs: ProbMap::deserialize(required(&value, "probs")?)?,
            }),
            "stats" => Ok(Request::Stats {
                session: u64_field(&value, "session")?,
            }),
            "close" => Ok(Request::Close {
                session: u64_field(&value, "session")?,
            }),
            "resume" => Ok(Request::Resume {
                session: u64_field(&value, "session")?,
            }),
            "ping" => Ok(Request::Ping),
            "negotiate" => {
                let text = string_field(&value, "frames")?;
                let format = FrameFormat::from_str_opt(&text)
                    .ok_or_else(|| ProtocolError::new(format!("unknown frame format `{text}`")))?;
                Ok(Request::Negotiate {
                    format,
                    dispersion: dispersion_field(&value)?,
                })
            }
            other => Err(ProtocolError::new(format!("unknown op `{other}`"))),
        }
    }
}

impl Response {
    /// Renders the response as one compact JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let value = match self {
            Response::Opened {
                session,
                series_length,
            } => object(vec![
                ("ok", Value::String("opened".into())),
                ("session", session.serialize()),
                ("series_length", series_length.serialize()),
            ]),
            Response::Verdicts {
                session,
                frame,
                verdicts,
            } => object(vec![
                ("ok", Value::String("verdicts".into())),
                ("session", session.serialize()),
                ("frame", frame.serialize()),
                ("verdicts", verdicts.serialize()),
            ]),
            Response::Stats { session, stats } => object(vec![
                ("ok", Value::String("stats".into())),
                ("session", session.serialize()),
                ("stats", stats.serialize()),
            ]),
            Response::Closed { session, stats } => object(vec![
                ("ok", Value::String("closed".into())),
                ("session", session.serialize()),
                ("stats", stats.serialize()),
            ]),
            Response::Resumed { session, frames } => object(vec![
                ("ok", Value::String("resumed".into())),
                ("session", session.serialize()),
                ("frames", frames.serialize()),
            ]),
            Response::Pong => object(vec![("ok", Value::String("pong".into()))]),
            Response::Negotiated { format, dispersion } => {
                let mut entries = vec![
                    ("ok", Value::String("negotiated".into())),
                    ("frames", Value::String(format.as_str().into())),
                ];
                if *dispersion != DispersionPrecision::F64 {
                    entries.push(("dispersion", Value::String(dispersion.as_str().into())));
                }
                object(entries)
            }
            Response::Error { code, message } => object(vec![
                ("err", Value::String(code.as_str().into())),
                ("message", message.serialize()),
            ]),
        };
        serde_json::to_string(&value).expect("document model serialization is infallible")
    }

    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on malformed JSON, an unknown `ok`/`err`
    /// discriminator, or a missing/mistyped field.
    pub fn decode(line: &str) -> Result<Self, ProtocolError> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| ProtocolError::new(e.to_string()))?;
        if let Some(err) = value.get("err") {
            let code_text = err
                .as_str()
                .ok_or_else(|| ProtocolError::new("field `err` must be a string"))?;
            let code = ErrorCode::from_str_opt(code_text)
                .ok_or_else(|| ProtocolError::new(format!("unknown error code `{code_text}`")))?;
            return Ok(Response::Error {
                code,
                message: string_field(&value, "message")?,
            });
        }
        let ok = string_field(&value, "ok")?;
        match ok.as_str() {
            "opened" => Ok(Response::Opened {
                session: u64_field(&value, "session")?,
                series_length: usize::deserialize(required(&value, "series_length")?)?,
            }),
            "verdicts" => Ok(Response::Verdicts {
                session: u64_field(&value, "session")?,
                frame: usize::deserialize(required(&value, "frame")?)?,
                verdicts: Vec::<SegmentVerdict>::deserialize(required(&value, "verdicts")?)?,
            }),
            "stats" => Ok(Response::Stats {
                session: u64_field(&value, "session")?,
                stats: SessionStats::deserialize(required(&value, "stats")?)?,
            }),
            "closed" => Ok(Response::Closed {
                session: u64_field(&value, "session")?,
                stats: SessionStats::deserialize(required(&value, "stats")?)?,
            }),
            "resumed" => Ok(Response::Resumed {
                session: u64_field(&value, "session")?,
                frames: usize::deserialize(required(&value, "frames")?)?,
            }),
            "pong" => Ok(Response::Pong),
            "negotiated" => {
                let text = string_field(&value, "frames")?;
                let format = FrameFormat::from_str_opt(&text)
                    .ok_or_else(|| ProtocolError::new(format!("unknown frame format `{text}`")))?;
                Ok(Response::Negotiated {
                    format,
                    dispersion: dispersion_field(&value)?,
                })
            }
            other => Err(ProtocolError::new(format!("unknown response `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaseg_data::SemanticClass;

    fn tiny_probs() -> ProbMap {
        let mut probs = ProbMap::uniform(2, 1, 3);
        probs
            .set_distribution(0, 0, &[0.5, 0.25, 0.25])
            .expect("valid distribution");
        probs
    }

    #[test]
    fn requests_roundtrip() {
        let requests = vec![
            Request::Open {
                model: "default".into(),
                camera: "cam-0".into(),
            },
            Request::Frame {
                session: 7,
                probs: tiny_probs(),
            },
            Request::Stats { session: 7 },
            Request::Close { session: 7 },
            Request::Resume { session: 7 },
            Request::Ping,
            Request::Negotiate {
                format: FrameFormat::Binary(metaseg_data::ProbEncoding::F64),
                dispersion: DispersionPrecision::F64,
            },
            Request::Negotiate {
                format: FrameFormat::Json,
                dispersion: DispersionPrecision::F64,
            },
            Request::Negotiate {
                format: FrameFormat::Binary(metaseg_data::ProbEncoding::U16),
                dispersion: DispersionPrecision::F32,
            },
        ];
        for request in requests {
            let line = request.encode();
            assert!(!line.contains('\n'), "one message per line: {line}");
            assert_eq!(Request::decode(&line).unwrap(), request);
        }
    }

    /// The f64 default travels as an *absent* key, so negotiation lines are
    /// byte-compatible with peers that predate the dispersion fast path.
    #[test]
    fn default_dispersion_is_absent_from_the_wire() {
        let request = Request::Negotiate {
            format: FrameFormat::Json,
            dispersion: DispersionPrecision::F64,
        };
        assert!(!request.encode().contains("dispersion"));
        let response = Response::Negotiated {
            format: FrameFormat::Json,
            dispersion: DispersionPrecision::F64,
        };
        assert!(!response.encode().contains("dispersion"));
        let fast = Request::Negotiate {
            format: FrameFormat::Json,
            dispersion: DispersionPrecision::F32,
        };
        assert!(fast.encode().contains("\"dispersion\":\"f32\""));
    }

    #[test]
    fn borrowed_frame_encoder_matches_the_owned_one() {
        let probs = tiny_probs();
        assert_eq!(
            Request::encode_frame(7, &probs),
            Request::Frame { session: 7, probs }.encode()
        );
    }

    #[test]
    fn responses_roundtrip() {
        let verdict = SegmentVerdict {
            frame: 3,
            track_id: 9,
            region_id: 1,
            class: SemanticClass::Car,
            area: 42,
            tp_probability: 0.875,
            predicted_iou: 1.0 / 3.0,
        };
        let responses = vec![
            Response::Opened {
                session: 1,
                series_length: 3,
            },
            Response::Verdicts {
                session: 1,
                frame: 3,
                verdicts: vec![verdict],
            },
            Response::Stats {
                session: 1,
                stats: SessionStats::default(),
            },
            Response::Closed {
                session: 1,
                stats: SessionStats::default(),
            },
            Response::Resumed {
                session: 1,
                frames: 17,
            },
            Response::Pong,
            Response::Negotiated {
                format: FrameFormat::Binary(metaseg_data::ProbEncoding::U16),
                dispersion: DispersionPrecision::F64,
            },
            Response::Negotiated {
                format: FrameFormat::Binary(metaseg_data::ProbEncoding::U16),
                dispersion: DispersionPrecision::F32,
            },
            Response::Error {
                code: ErrorCode::Backpressure,
                message: "queue full".into(),
            },
        ];
        for response in responses {
            let line = response.encode();
            assert!(!line.contains('\n'), "one message per line: {line}");
            assert_eq!(Response::decode(&line).unwrap(), response);
        }
    }

    #[test]
    fn verdict_floats_roundtrip_bit_identically() {
        let verdict = SegmentVerdict {
            frame: 0,
            track_id: 0,
            region_id: 0,
            class: SemanticClass::Human,
            area: 1,
            tp_probability: std::f64::consts::FRAC_1_SQRT_2,
            predicted_iou: 2.0 / 7.0,
        };
        let line = Response::Verdicts {
            session: 0,
            frame: 0,
            verdicts: vec![verdict.clone()],
        }
        .encode();
        match Response::decode(&line).unwrap() {
            Response::Verdicts { verdicts, .. } => {
                assert!(verdicts[0].tp_probability == verdict.tp_probability);
                assert!(verdicts[0].predicted_iou == verdict.predicted_iou);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_produce_typed_errors_not_panics() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"open\"}",
            "{\"op\":\"frame\",\"session\":-1,\"probs\":{}}",
            "{\"op\":\"frame\",\"session\":1,\"probs\":{\"width\":1}}",
            "{\"op\":\"frame\",\"session\":1}",
            "{\"op\":\"negotiate\"}",
            "{\"op\":\"negotiate\",\"frames\":\"binary-f16\"}",
            "{\"op\":\"negotiate\",\"frames\":\"binary-u16\",\"dispersion\":\"f16\"}",
            "{\"op\":\"negotiate\",\"frames\":\"binary-u16\",\"dispersion\":7}",
        ] {
            assert!(Request::decode(bad).is_err(), "accepted {bad:?}");
        }
        for bad in [
            "{}",
            "{\"ok\":\"nope\"}",
            "{\"err\":\"nope\",\"message\":\"x\"}",
        ] {
            assert!(Response::decode(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn truncated_verdicts_error_instead_of_decoding_to_nan() {
        // A verdict object missing a field (truncated document, mismatched
        // peer) must be a decode error — never a silently-NaN probability.
        let bad = "{\"ok\":\"verdicts\",\"session\":1,\"frame\":0,\"verdicts\":\
                   [{\"frame\":0,\"track_id\":0,\"region_id\":0,\"class\":\"Car\",\"area\":1}]}";
        let err = Response::decode(bad).unwrap_err();
        assert!(
            err.to_string().contains("missing field"),
            "unexpected error: {err}"
        );
        // Explicit null is still the valid encoding of a non-finite float.
        let null_prob = "{\"ok\":\"verdicts\",\"session\":1,\"frame\":0,\"verdicts\":\
                         [{\"frame\":0,\"track_id\":0,\"region_id\":0,\"class\":\"Car\",\
                         \"area\":1,\"tp_probability\":null,\"predicted_iou\":0.5}]}";
        match Response::decode(null_prob).unwrap() {
            Response::Verdicts { verdicts, .. } => assert!(verdicts[0].tp_probability.is_nan()),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::Backpressure,
            ErrorCode::UnknownModel,
            ErrorCode::UnknownSession,
            ErrorCode::BadRequest,
            ErrorCode::ShuttingDown,
            ErrorCode::Overloaded,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_str_opt(code.as_str()), Some(code));
            assert_eq!(code.to_string(), code.as_str());
        }
        assert_eq!(ErrorCode::from_str_opt("nope"), None);
    }

    #[test]
    fn frame_formats_roundtrip() {
        use metaseg_data::ProbEncoding;
        for format in [
            FrameFormat::Json,
            FrameFormat::Binary(ProbEncoding::F64),
            FrameFormat::Binary(ProbEncoding::F32),
            FrameFormat::Binary(ProbEncoding::U16),
        ] {
            assert_eq!(FrameFormat::from_str_opt(format.as_str()), Some(format));
            assert_eq!(format.to_string(), format.as_str());
        }
        assert_eq!(FrameFormat::from_str_opt("binary"), None);
        assert!(FrameFormat::Json.is_lossless());
        assert!(FrameFormat::Binary(ProbEncoding::F64).is_lossless());
        assert!(!FrameFormat::Binary(ProbEncoding::F32).is_lossless());
        assert!(!FrameFormat::Binary(ProbEncoding::U16).is_lossless());
    }
}
