//! A small blocking client for the serve protocol.
//!
//! Used by the integration tests, the demo example and the loadtest binary;
//! production consumers in other languages just speak the JSON-lines
//! protocol directly.

use crate::protocol::{ErrorCode, FrameFormat, ProtocolError, Request, Response};
use crate::wire::encode_binary_frame;
use metaseg::stream::{SegmentVerdict, SessionStats};
use metaseg::DispersionPrecision;
use metaseg_data::ProbMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure of one request.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server's reply could not be decoded, or had an unexpected shape.
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

impl ClientError {
    /// The typed server error code, when this is a server-side rejection.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(value: io::Error) -> Self {
        ClientError::Io(value)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(value: ProtocolError) -> Self {
        ClientError::Protocol(value.to_string())
    }
}

/// A blocking connection to a serve instance.
///
/// Starts on the JSON-lines protocol; [`ServeClient::negotiate`] switches
/// frame submissions to the length-prefixed binary framing of
/// [`crate::wire`] (control operations and all responses stay JSON lines).
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    format: FrameFormat,
}

impl ServeClient {
    /// Connects to a running server (frame format: JSON until negotiated).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
            format: FrameFormat::Json,
        })
    }

    /// The frame-submission format currently in effect.
    pub fn frame_format(&self) -> FrameFormat {
        self.format
    }

    /// Negotiates the connection's frame-submission format; subsequent
    /// [`ServeClient::submit`] calls use it. A server predating binary
    /// framing rejects the op with `bad-request`, in which case the
    /// connection stays on JSON — callers wanting graceful fallback can
    /// match on [`ClientError::server_code`].
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection; the format in
    /// effect is unchanged on failure.
    pub fn negotiate(&mut self, format: FrameFormat) -> Result<(), ClientError> {
        self.negotiate_with_dispersion(format, DispersionPrecision::F64)
    }

    /// Like [`ServeClient::negotiate`], but additionally asks the server to
    /// run its dispersion scan at the given precision for this connection's
    /// frames. [`DispersionPrecision::F32`] is the vectorised fast path
    /// (metrics within ~1e-4 relative of the exact f64 scan);
    /// [`DispersionPrecision::F64`] is the exact default and keeps the
    /// negotiation line byte-identical to what pre-fast-path clients send.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection; the format in
    /// effect is unchanged on failure.
    pub fn negotiate_with_dispersion(
        &mut self,
        format: FrameFormat,
        dispersion: DispersionPrecision,
    ) -> Result<(), ClientError> {
        self.expect(&Request::Negotiate { format, dispersion }, |r| match r {
            Response::Negotiated { format, .. } => Ok(format),
            other => Err(other),
        })
        .map(|confirmed| {
            self.format = confirmed;
        })
    }

    /// Sends one request and reads its response. Server-side `Error`
    /// responses are returned as `Ok(Response::Error { .. })` here; the
    /// typed helpers below turn them into [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Fails on transport errors and undecodable replies.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.roundtrip(&request.encode())
    }

    /// One already-encoded line out, one response in.
    fn roundtrip(&mut self, line: &str) -> Result<Response, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Reads one JSON response line (every response is a JSON line, whatever
    /// format the request went out in).
    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut reply = String::new();
        let read = self.reader.read_line(&mut reply)?;
        if read == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        Ok(Response::decode(reply.trim_end())?)
    }

    fn finish<T>(
        &mut self,
        response: Response,
        extract: impl FnOnce(Response) -> Result<T, Response>,
    ) -> Result<T, ClientError> {
        match response {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => extract(other)
                .map_err(|r| ClientError::Protocol(format!("unexpected response {r:?}"))),
        }
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        extract: impl FnOnce(Response) -> Result<T, Response>,
    ) -> Result<T, ClientError> {
        let response = self.request(request)?;
        self.finish(response, extract)
    }

    /// Opens a camera session; returns `(session id, series length)`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection.
    pub fn open(&mut self, model: &str, camera: &str) -> Result<(u64, usize), ClientError> {
        self.expect(
            &Request::Open {
                model: model.to_string(),
                camera: camera.to_string(),
            },
            |r| match r {
                Response::Opened {
                    session,
                    series_length,
                } => Ok((session, series_length)),
                other => Err(other),
            },
        )
    }

    /// Submits one frame in the negotiated format; returns `(frame index,
    /// verdicts)`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection —
    /// [`ErrorCode::Backpressure`] is the retryable overload signal.
    pub fn submit(
        &mut self,
        session: u64,
        probs: &ProbMap,
    ) -> Result<(usize, Vec<SegmentVerdict>), ClientError> {
        let response = match self.format {
            // Encode from the borrowed field — no per-frame ProbMap clone.
            FrameFormat::Json => self.roundtrip(&Request::encode_frame(session, probs))?,
            FrameFormat::Binary(encoding) => {
                // Length-prefixed binary frame out (no newline), JSON
                // response line back.
                let frame = encode_binary_frame(session, probs, encoding);
                self.writer.write_all(&frame)?;
                self.writer.flush()?;
                self.read_response()?
            }
        };
        self.finish(response, |r| match r {
            Response::Verdicts {
                frame, verdicts, ..
            } => Ok((frame, verdicts)),
            other => Err(other),
        })
    }

    /// Fetches the session's statistics snapshot.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection.
    pub fn stats(&mut self, session: u64) -> Result<SessionStats, ClientError> {
        self.expect(&Request::Stats { session }, |r| match r {
            Response::Stats { stats, .. } => Ok(stats),
            other => Err(other),
        })
    }

    /// Closes a session; returns its final statistics.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection.
    pub fn close(&mut self, session: u64) -> Result<SessionStats, ClientError> {
        self.expect(&Request::Close { session }, |r| match r {
            Response::Closed { stats, .. } => Ok(stats),
            other => Err(other),
        })
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Ping, |r| match r {
            Response::Pong => Ok(()),
            other => Err(other),
        })
    }
}
