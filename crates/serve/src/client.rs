//! A small blocking client for the serve protocol.
//!
//! Used by the integration tests, the demo example and the loadtest binary;
//! production consumers in other languages just speak the JSON-lines
//! protocol directly.
//!
//! The client is *deadline-bounded and retrying* by default:
//! [`ServeClient::connect`] applies the [`ClientConfig::default`] socket
//! deadlines (a stalled server surfaces as the typed, retryable
//! [`ClientError::TimedOut`] instead of hanging a thread forever), and the
//! `*_with_retry` helpers layer jittered exponential backoff on
//! backpressure/overload plus reconnect-and-resume on transport faults: a
//! chaos-killed connection does not kill its sessions — the client
//! re-attaches with [`Request::Resume`] and picks up exactly where the
//! server says it stopped.

use crate::protocol::{ErrorCode, FrameFormat, ProtocolError, Request, Response};
use crate::wire::encode_binary_frame;
use metaseg::stream::{SegmentVerdict, SessionStats};
use metaseg::DispersionPrecision;
use metaseg_data::ProbMap;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Client-side failure of one request.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// A socket deadline expired mid-request. Retryable — but the stream
    /// may hold a half-read response, so retry on a fresh connection
    /// (see [`ServeClient::submit_with_retry`]).
    TimedOut(io::Error),
    /// The server's reply could not be decoded, or had an unexpected shape.
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

impl ClientError {
    /// The typed server error code, when this is a server-side rejection.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Whether retrying can plausibly succeed: overload rejections
    /// ([`ErrorCode::Backpressure`], [`ErrorCode::Overloaded`]) retry on
    /// the same connection after backing off; timeouts, transport errors
    /// and desynchronised replies retry on a *fresh* connection (the
    /// current stream may hold partial garbage). Other server rejections —
    /// unknown session/model, bad request, shutting down, internal — are
    /// verdicts, not weather, and retrying them verbatim cannot help.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::TimedOut(_) | ClientError::Protocol(_) => true,
            ClientError::Server { code, .. } => {
                matches!(code, ErrorCode::Backpressure | ErrorCode::Overloaded)
            }
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::TimedOut(e) => write!(f, "request deadline expired: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(value: io::Error) -> Self {
        // On Unix an expired `SO_RCVTIMEO`/`SO_SNDTIMEO` surfaces as
        // `WouldBlock`, on Windows as `TimedOut`; fold both into the typed
        // retryable variant so every `?` site classifies deadlines for free.
        match value.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::TimedOut(value),
            _ => ClientError::Io(value),
        }
    }
}

/// Socket deadlines and retry policy of a [`ServeClient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientConfig {
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Socket read deadline (`None` blocks forever — the pre-chaos
    /// behaviour; opt into it explicitly if you must).
    pub read_timeout: Option<Duration>,
    /// Socket write deadline (`None` blocks forever).
    pub write_timeout: Option<Duration>,
    /// Attempts per `*_with_retry` operation (including the first).
    pub max_retries: usize,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed of the deterministic backoff jitter (multiplies each delay by
    /// a factor in `[0.5, 1.5)` so a fleet of retrying cameras does not
    /// stampede in lockstep).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_retries: 8,
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0xC0FF_EE00,
        }
    }
}

/// What [`ServeClient::submit_with_retry`] concluded about one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Submission {
    /// The server answered this submission directly.
    Served {
        /// Index of the frame within the session.
        frame: usize,
        /// One verdict per tracked segment, in record order.
        verdicts: Vec<SegmentVerdict>,
    },
    /// The frame was applied server-side but its response was lost to a
    /// connection fault: after reconnect-and-resume the server reported a
    /// frames-applied count past this frame, so resubmitting would
    /// double-apply. The verdicts are gone with the dead connection.
    Applied {
        /// Index of the frame within the session.
        frame: usize,
    },
}

impl From<ProtocolError> for ClientError {
    fn from(value: ProtocolError) -> Self {
        ClientError::Protocol(value.to_string())
    }
}

/// A blocking connection to a serve instance.
///
/// Starts on the JSON-lines protocol; [`ServeClient::negotiate`] switches
/// frame submissions to the length-prefixed binary framing of
/// [`crate::wire`] (control operations and all responses stay JSON lines).
///
/// The client remembers the resolved peer addresses, the negotiated frame
/// format/dispersion and the per-session applied-frame counts, so the
/// `*_with_retry` helpers can transparently reconnect, renegotiate and
/// [`ServeClient::resume`] sessions after a connection fault.
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    format: FrameFormat,
    dispersion: DispersionPrecision,
    config: ClientConfig,
    peers: Vec<SocketAddr>,
    /// Per-session count of frames the server has *acknowledged applying*
    /// (open → 0, each served frame `n` → `n + 1`, resume → server's
    /// authoritative count). Lets `submit_with_retry` detect the
    /// applied-but-response-lost case without double-applying.
    acked: HashMap<u64, usize>,
    reconnects: usize,
    jitter_state: u64,
}

impl ServeClient {
    /// Connects to a running server with [`ClientConfig::default`]: frame
    /// format JSON until negotiated, and — deliberately — socket read/write
    /// deadlines applied, so a wedged or maliciously slow server surfaces
    /// as [`ClientError::TimedOut`] instead of hanging the calling thread.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit deadline/retry policy.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when resolution or connection fails.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Self> {
        let peers: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let (reader, writer) = Self::establish(&peers, &config)?;
        Ok(Self {
            reader,
            writer,
            format: FrameFormat::Json,
            dispersion: DispersionPrecision::F64,
            jitter_state: config.jitter_seed,
            config,
            peers,
            acked: HashMap::new(),
            reconnects: 0,
        })
    }

    /// Dials the first reachable resolved peer and applies the socket
    /// deadlines from the config.
    fn establish(
        peers: &[SocketAddr],
        config: &ClientConfig,
    ) -> io::Result<(BufReader<TcpStream>, TcpStream)> {
        let mut last: Option<io::Error> = None;
        for peer in peers {
            match TcpStream::connect_timeout(peer, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(config.read_timeout)?;
                    stream.set_write_timeout(config.write_timeout)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok((reader, stream));
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no addresses to connect to")
        }))
    }

    /// How many times this client has re-established its connection.
    pub fn reconnects(&self) -> usize {
        self.reconnects
    }

    /// The active deadline/retry policy.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The frame-submission format currently in effect.
    pub fn frame_format(&self) -> FrameFormat {
        self.format
    }

    /// Negotiates the connection's frame-submission format; subsequent
    /// [`ServeClient::submit`] calls use it. A server predating binary
    /// framing rejects the op with `bad-request`, in which case the
    /// connection stays on JSON — callers wanting graceful fallback can
    /// match on [`ClientError::server_code`].
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection; the format in
    /// effect is unchanged on failure.
    pub fn negotiate(&mut self, format: FrameFormat) -> Result<(), ClientError> {
        self.negotiate_with_dispersion(format, DispersionPrecision::F64)
    }

    /// Like [`ServeClient::negotiate`], but additionally asks the server to
    /// run its dispersion scan at the given precision for this connection's
    /// frames. [`DispersionPrecision::F32`] is the vectorised fast path
    /// (metrics within ~1e-4 relative of the exact f64 scan);
    /// [`DispersionPrecision::F64`] is the exact default and keeps the
    /// negotiation line byte-identical to what pre-fast-path clients send.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection; the format in
    /// effect is unchanged on failure.
    pub fn negotiate_with_dispersion(
        &mut self,
        format: FrameFormat,
        dispersion: DispersionPrecision,
    ) -> Result<(), ClientError> {
        self.expect(&Request::Negotiate { format, dispersion }, |r| match r {
            Response::Negotiated { format, .. } => Ok(format),
            other => Err(other),
        })
        .map(|confirmed| {
            self.format = confirmed;
            // Remembered so a reconnect can renegotiate the same terms.
            self.dispersion = dispersion;
        })
    }

    /// Sends one request and reads its response. Server-side `Error`
    /// responses are returned as `Ok(Response::Error { .. })` here; the
    /// typed helpers below turn them into [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Fails on transport errors and undecodable replies.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.roundtrip(&request.encode())
    }

    /// One already-encoded line out, one response in.
    fn roundtrip(&mut self, line: &str) -> Result<Response, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Reads one JSON response line (every response is a JSON line, whatever
    /// format the request went out in).
    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut reply = String::new();
        let read = self.reader.read_line(&mut reply)?;
        if read == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        Ok(Response::decode(reply.trim_end())?)
    }

    fn finish<T>(
        &mut self,
        response: Response,
        extract: impl FnOnce(Response) -> Result<T, Response>,
    ) -> Result<T, ClientError> {
        match response {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => extract(other)
                .map_err(|r| ClientError::Protocol(format!("unexpected response {r:?}"))),
        }
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        extract: impl FnOnce(Response) -> Result<T, Response>,
    ) -> Result<T, ClientError> {
        let response = self.request(request)?;
        self.finish(response, extract)
    }

    /// Opens a camera session; returns `(session id, series length)`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection.
    pub fn open(&mut self, model: &str, camera: &str) -> Result<(u64, usize), ClientError> {
        self.expect(
            &Request::Open {
                model: model.to_string(),
                camera: camera.to_string(),
            },
            |r| match r {
                Response::Opened {
                    session,
                    series_length,
                } => Ok((session, series_length)),
                other => Err(other),
            },
        )
        .inspect(|(session, _)| {
            self.acked.insert(*session, 0);
        })
    }

    /// Submits one frame in the negotiated format; returns `(frame index,
    /// verdicts)`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection —
    /// [`ErrorCode::Backpressure`] is the retryable overload signal.
    pub fn submit(
        &mut self,
        session: u64,
        probs: &ProbMap,
    ) -> Result<(usize, Vec<SegmentVerdict>), ClientError> {
        let response = match self.format {
            // Encode from the borrowed field — no per-frame ProbMap clone.
            FrameFormat::Json => self.roundtrip(&Request::encode_frame(session, probs))?,
            FrameFormat::Binary(encoding) => {
                // Length-prefixed binary frame out (no newline), JSON
                // response line back.
                let frame = encode_binary_frame(session, probs, encoding);
                self.writer.write_all(&frame)?;
                self.writer.flush()?;
                self.read_response()?
            }
        };
        self.finish(response, |r| match r {
            // Guard on the session id so a desynchronised stream can never
            // mis-attribute another session's verdicts to this frame.
            Response::Verdicts {
                session: s,
                frame,
                verdicts,
            } if s == session => Ok((frame, verdicts)),
            other => Err(other),
        })
        .inspect(|(frame, _)| {
            self.acked.insert(session, frame + 1);
        })
    }

    /// Fetches the session's statistics snapshot.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection.
    pub fn stats(&mut self, session: u64) -> Result<SessionStats, ClientError> {
        self.expect(&Request::Stats { session }, |r| match r {
            Response::Stats { stats, .. } => Ok(stats),
            other => Err(other),
        })
    }

    /// Closes a session; returns its final statistics.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection.
    pub fn close(&mut self, session: u64) -> Result<SessionStats, ClientError> {
        self.expect(&Request::Close { session }, |r| match r {
            Response::Closed { stats, .. } => Ok(stats),
            other => Err(other),
        })
        .inspect(|_| {
            self.acked.remove(&session);
        })
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Ping, |r| match r {
            Response::Pong => Ok(()),
            other => Err(other),
        })
    }

    /// Re-attaches a session opened on an earlier (possibly dead)
    /// connection of this server; returns the server's authoritative count
    /// of frames applied so far. Sessions are keyed by id server-side and
    /// linger for a configurable window after their connection dies, so a
    /// chaos-killed connection does not lose its stream state.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a typed server rejection —
    /// [`ErrorCode::UnknownSession`] when the session expired, was closed,
    /// or is still owned by another live connection.
    pub fn resume(&mut self, session: u64) -> Result<usize, ClientError> {
        self.expect(&Request::Resume { session }, |r| match r {
            Response::Resumed {
                session: s, frames, ..
            } if s == session => Ok(frames),
            other => Err(other),
        })
        .inspect(|frames| {
            self.acked.insert(session, *frames);
        })
    }

    /// Tears down the current stream and dials a fresh connection to the
    /// remembered peers, renegotiating the previously confirmed frame
    /// format and dispersion precision. On failure the desired terms are
    /// retained, so a later attempt negotiates them again.
    ///
    /// # Errors
    ///
    /// Fails when no peer accepts the connection or renegotiation fails.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        // Hasten the server-side EOF of the old connection so the session
        // orphaning (and thus resume) happens promptly.
        let _ = self.writer.shutdown(Shutdown::Both);
        let (reader, writer) = Self::establish(&self.peers, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        self.reconnects += 1;
        // A fresh connection starts on JSON/f64 server-side; restore the
        // negotiated terms before any frame goes out. `self.format` is only
        // trusted once the server confirms, so a failure here leaves the
        // client unable to submit — callers retry reconnect().
        if !matches!(self.format, FrameFormat::Json) || self.dispersion != DispersionPrecision::F64
        {
            let (format, dispersion) = (self.format, self.dispersion);
            self.negotiate_with_dispersion(format, dispersion)?;
        }
        Ok(())
    }

    /// Reconnects and resumes `session`, retrying with backoff. Retries an
    /// `unknown-session` denial too: right after a connection fault the
    /// server may not have processed the old connection's death yet, in
    /// which case the session is still owned by the dying connection and
    /// resume is briefly denied.
    fn reestablish(&mut self, session: u64) -> Result<usize, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.config.max_retries.max(1) {
            if let Err(e) = self.reconnect() {
                last = Some(e);
                self.backoff(attempt);
                continue;
            }
            match self.resume(session) {
                Ok(frames) => return Ok(frames),
                Err(e)
                    if e.is_retryable() || e.server_code() == Some(ErrorCode::UnknownSession) =>
                {
                    last = Some(e);
                    self.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last
            .unwrap_or_else(|| ClientError::Protocol("reconnect attempts exhausted".to_string())))
    }

    /// Submits one frame, riding out transient failure: overload
    /// rejections back off and retry on the same connection; transport
    /// faults, timeouts, desynchronised replies and `bad-request` (a frame
    /// corrupted *on the wire* fails the binary checksum and is rejected
    /// without being applied — and the stream past the corruption is
    /// suspect) reconnect, resume the session and — unless the server
    /// reports the frame as already applied — resubmit. The
    /// applied-but-response-lost case comes back as [`Submission::Applied`]
    /// so the stream never double-applies a frame.
    ///
    /// # Errors
    ///
    /// Fails when retries are exhausted or on a non-retryable server
    /// rejection (unknown session/model, shutdown, internal error).
    pub fn submit_with_retry(
        &mut self,
        session: u64,
        probs: &ProbMap,
    ) -> Result<Submission, ClientError> {
        let expected = self.acked.get(&session).copied().unwrap_or(0);
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.config.max_retries.max(1) {
            match self.submit(session, probs) {
                Ok((frame, verdicts)) => return Ok(Submission::Served { frame, verdicts }),
                Err(
                    e @ ClientError::Server {
                        code: ErrorCode::Backpressure | ErrorCode::Overloaded,
                        ..
                    },
                ) => {
                    last = Some(e);
                    self.backoff(attempt);
                }
                Err(
                    e @ ClientError::Server {
                        code:
                            ErrorCode::UnknownSession
                            | ErrorCode::UnknownModel
                            | ErrorCode::ShuttingDown
                            | ErrorCode::Internal,
                        ..
                    },
                ) => return Err(e),
                Err(e) => {
                    // Transport fault / timeout / desync / wire-corrupted
                    // frame: the connection is suspect and (except for the
                    // typed rejection) we cannot know whether the frame
                    // landed. Reconnect, resume, and let the server's
                    // applied count arbitrate.
                    last = Some(e);
                    let frames = self.reestablish(session)?;
                    if frames > expected {
                        return Ok(Submission::Applied { frame: frames - 1 });
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Protocol("submit attempts exhausted".to_string())))
    }

    /// Closes a session, riding out transient failure like
    /// [`ServeClient::submit_with_retry`]. Returns `Ok(None)` when the
    /// session is already gone server-side — closed by a racing request
    /// whose response was lost, or expired past its linger window — in
    /// which case the final statistics are unavailable.
    ///
    /// # Errors
    ///
    /// Fails when retries are exhausted or on a non-retryable server
    /// rejection.
    pub fn close_with_retry(&mut self, session: u64) -> Result<Option<SessionStats>, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.config.max_retries.max(1) {
            match self.close(session) {
                Ok(stats) => return Ok(Some(stats)),
                Err(ClientError::Server {
                    code: ErrorCode::UnknownSession,
                    ..
                }) => {
                    self.acked.remove(&session);
                    return Ok(None);
                }
                Err(
                    e @ ClientError::Server {
                        code: ErrorCode::Backpressure | ErrorCode::Overloaded,
                        ..
                    },
                ) => {
                    last = Some(e);
                    self.backoff(attempt);
                }
                Err(
                    e @ ClientError::Server {
                        code:
                            ErrorCode::UnknownModel | ErrorCode::ShuttingDown | ErrorCode::Internal,
                        ..
                    },
                ) => return Err(e),
                Err(e) => {
                    // Transport fault, timeout, desync or a close line
                    // corrupted on the wire (`bad-request`): retry on a
                    // fresh connection.
                    last = Some(e);
                    match self.reestablish(session) {
                        Ok(_) => {} // resumed — retry the close
                        Err(ClientError::Server {
                            code: ErrorCode::UnknownSession,
                            ..
                        }) => {
                            // The close landed and its response was lost,
                            // or the linger expired: either way it is gone.
                            self.acked.remove(&session);
                            return Ok(None);
                        }
                        Err(e2) => {
                            last = Some(e2);
                            self.backoff(attempt);
                        }
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Protocol("close attempts exhausted".to_string())))
    }

    /// Sleeps the jittered exponential backoff delay for `attempt`
    /// (0-based): `base * 2^attempt`, capped at `backoff_max`, scaled by a
    /// deterministic factor in `[0.5, 1.5)` from a splitmix64 stream (the
    /// serve crate deliberately has no runtime RNG dependency).
    fn backoff(&mut self, attempt: usize) {
        let base = self.config.backoff_base.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.config.backoff_max.max(base));
        self.jitter_state = self.jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        thread::sleep(capped.mul_f64(0.5 + unit));
    }
}
