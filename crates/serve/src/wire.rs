//! Length-prefixed binary framing for frame submissions.
//!
//! JSON text dominates the per-frame budget of the serve protocol: a
//! 48x24x19 softmax field is ~400 KiB of decimal floats but only ~171 KiB of
//! raw little-endian `f64`s — and decoding the latter is a bounds check, a
//! checksum and a `memcpy` instead of a float parser. This module defines
//! the binary frame a client may send *instead of* a JSON `frame` line once
//! it has negotiated binary framing on the connection (see
//! [`Request::Negotiate`](crate::Request)); every other operation, and every
//! response, stays on the JSON-lines protocol.
//!
//! ## Frame layout
//!
//! One frame is a fixed 36-byte header followed by the payload bytes; all
//! multi-byte integers are little-endian:
//!
//! ```text
//! offset len  field
//! 0      1    magic      0xB5 (never the first byte of a JSON line)
//! 1      1    version    1
//! 2      1    encoding   0 = f64 | 1 = f32 | 2 = u16   (ProbEncoding tag)
//! 3      1    reserved   must be 0
//! 4      8    session    u64 session id
//! 12     4    width      u32 field width in pixels
//! 16     4    height     u32 field height in pixels
//! 20     4    channels   u32 softmax channels per pixel
//! 24     8    payload    u64 payload length in bytes
//! 32     4    checksum   CRC-32 (IEEE) of the payload bytes
//! 36     …    payload    width * height * channels values, little-endian,
//!                        row-major pixel-major (see ProbEncoding)
//! ```
//!
//! The header is self-describing and the payload length is bounded before
//! anything is allocated, so a server can always either decode the frame or
//! answer a typed error and resynchronise on the next message — decoding is
//! *total*: no input, however corrupt, panics or desynchronises the stream
//! (the property tests below pin this).
//!
//! ```
//! use metaseg_data::{ProbEncoding, ProbMap};
//! use metaseg_serve::wire::{decode_binary_frame, encode_binary_frame, BINARY_FRAME_MAGIC};
//!
//! let probs = ProbMap::uniform(2, 1, 3);
//! let bytes = encode_binary_frame(7, &probs, ProbEncoding::F64);
//!
//! // Fixed header: magic, version 1, encoding tag, reserved zero…
//! assert_eq!(bytes[0], BINARY_FRAME_MAGIC);
//! assert_eq!(&bytes[1..4], &[1, ProbEncoding::F64.tag(), 0]);
//! // …then session, dimensions and payload length, all little-endian…
//! assert_eq!(&bytes[4..12], &7u64.to_le_bytes());
//! assert_eq!(&bytes[12..16], &2u32.to_le_bytes());
//! assert_eq!(&bytes[16..20], &1u32.to_le_bytes());
//! assert_eq!(&bytes[20..24], &3u32.to_le_bytes());
//! assert_eq!(&bytes[24..32], &(2u64 * 1 * 3 * 8).to_le_bytes());
//! // …and the whole frame decodes back bit-identically.
//! let (session, decoded) = decode_binary_frame(&bytes, 1 << 20).unwrap();
//! assert_eq!((session, decoded), (7, probs));
//! ```

use metaseg_data::{DataError, ProbEncoding, ProbMap, ProbPayload};
use std::fmt;

/// First byte of every binary frame. JSON lines from this protocol always
/// start with `{`, so one peeked byte routes a connection's next message.
pub const BINARY_FRAME_MAGIC: u8 = 0xB5;

/// Protocol version encoded in (and required by) the header.
pub const BINARY_FRAME_VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const BINARY_HEADER_LEN: usize = 36;

/// A binary frame that could not be decoded. Every variant is typed so the
/// server can answer a precise `bad-request` message and stay in sync.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The input ended before the fixed header or the declared payload.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it found.
        found: usize,
    },
    /// The first byte is not [`BINARY_FRAME_MAGIC`].
    BadMagic(u8),
    /// The header declares a protocol version this build does not speak.
    UnsupportedVersion(u8),
    /// The header's encoding tag is not a known [`ProbEncoding`].
    UnknownEncoding(u8),
    /// The reserved header byte is non-zero.
    NonZeroReserved(u8),
    /// The declared shape has a zero dimension.
    ZeroDimension {
        /// Declared width.
        width: u32,
        /// Declared height.
        height: u32,
        /// Declared channels.
        channels: u32,
    },
    /// The declared payload length does not equal
    /// `width * height * channels * bytes_per_value`.
    LengthMismatch {
        /// Payload length the header declares.
        declared: u64,
        /// Payload length the shape implies.
        expected: u64,
    },
    /// The declared payload exceeds the receiver's size cap; nothing was
    /// allocated.
    PayloadTooLarge {
        /// Payload length the header declares.
        declared: u64,
        /// The receiver's cap in bytes.
        limit: u64,
    },
    /// The payload's CRC-32 does not match the header.
    ChecksumMismatch {
        /// Checksum the header declares.
        declared: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// The payload failed the byte-level [`ProbMap`] decode.
    Data(DataError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, found } => {
                write!(
                    f,
                    "binary frame truncated: needed {needed} bytes, got {found}"
                )
            }
            WireError::BadMagic(byte) => {
                write!(f, "not a binary frame: first byte {byte:#04x}")
            }
            WireError::UnsupportedVersion(version) => write!(
                f,
                "unsupported binary frame version {version} (this build speaks \
                 {BINARY_FRAME_VERSION})"
            ),
            WireError::UnknownEncoding(tag) => {
                write!(f, "unknown payload encoding tag {tag}")
            }
            WireError::NonZeroReserved(byte) => {
                write!(f, "reserved header byte must be 0, got {byte:#04x}")
            }
            WireError::ZeroDimension {
                width,
                height,
                channels,
            } => write!(
                f,
                "frame header declares a zero dimension ({width}x{height}x{channels})"
            ),
            WireError::LengthMismatch { declared, expected } => write!(
                f,
                "frame header declares {declared} payload bytes but its shape requires {expected}"
            ),
            WireError::PayloadTooLarge { declared, limit } => write!(
                f,
                "frame payload of {declared} bytes exceeds the receiver's cap of {limit}"
            ),
            WireError::ChecksumMismatch { declared, computed } => write!(
                f,
                "payload checksum mismatch: header declares {declared:#010x}, \
                 payload hashes to {computed:#010x}"
            ),
            WireError::Data(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for WireError {
    fn from(value: DataError) -> Self {
        WireError::Data(value)
    }
}

/// CRC-32 (IEEE) of a byte slice — the payload checksum of the frame header.
///
/// Re-exported from `metaseg_data`: the wire protocol and the chunked
/// container format (`metaseg_data::container`) share one CRC implementation
/// so the two byte formats can never drift apart on polynomial, reflection
/// or initial value. The framing stays byte-identical (the property tests
/// below pin it, including the IEEE reference vector).
pub use metaseg_data::crc32;

/// The parsed fixed header of a binary frame.
///
/// [`BinaryFrameHeader::parse`] performs the *syntactic* checks (magic,
/// version, encoding tag, reserved byte);
/// [`BinaryFrameHeader::checked_payload_len`] performs the *semantic* ones
/// (non-zero shape, declared length consistent with the shape, receiver
/// cap) — split so a server can bound-check before reading the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryFrameHeader {
    /// Session the frame belongs to.
    pub session: u64,
    /// Payload value encoding.
    pub encoding: ProbEncoding,
    /// Field width in pixels.
    pub width: u32,
    /// Field height in pixels.
    pub height: u32,
    /// Softmax channels per pixel.
    pub channels: u32,
    /// Declared payload length in bytes.
    pub payload_len: u64,
    /// Declared CRC-32 of the payload.
    pub checksum: u32,
}

/// Little-endian field reader over the fixed header buffer.
fn le_u32(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(
        bytes[offset..offset + 4]
            .try_into()
            .expect("fixed 4-byte slice"),
    )
}

fn le_u64(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(
        bytes[offset..offset + 8]
            .try_into()
            .expect("fixed 8-byte slice"),
    )
}

impl BinaryFrameHeader {
    /// Parses and syntactically validates a fixed header.
    ///
    /// # Errors
    ///
    /// Returns the typed [`WireError`] for a short buffer, wrong magic,
    /// unsupported version, unknown encoding tag or non-zero reserved byte.
    pub fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < BINARY_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: BINARY_HEADER_LEN,
                found: bytes.len(),
            });
        }
        if bytes[0] != BINARY_FRAME_MAGIC {
            return Err(WireError::BadMagic(bytes[0]));
        }
        if bytes[1] != BINARY_FRAME_VERSION {
            return Err(WireError::UnsupportedVersion(bytes[1]));
        }
        let encoding =
            ProbEncoding::from_tag(bytes[2]).ok_or(WireError::UnknownEncoding(bytes[2]))?;
        if bytes[3] != 0 {
            return Err(WireError::NonZeroReserved(bytes[3]));
        }
        Ok(Self {
            session: le_u64(bytes, 4),
            encoding,
            width: le_u32(bytes, 12),
            height: le_u32(bytes, 16),
            channels: le_u32(bytes, 20),
            payload_len: le_u64(bytes, 24),
            checksum: le_u32(bytes, 32),
        })
    }

    /// Semantically validates the declared payload length against the shape
    /// and a receiver-side cap, returning it as a `usize` safe to allocate.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::ZeroDimension`] for empty shapes,
    /// [`WireError::LengthMismatch`] when the header lies about its own
    /// shape, and [`WireError::PayloadTooLarge`] beyond `max_payload_bytes`.
    pub fn checked_payload_len(&self, max_payload_bytes: u64) -> Result<usize, WireError> {
        if self.width == 0 || self.height == 0 || self.channels == 0 {
            return Err(WireError::ZeroDimension {
                width: self.width,
                height: self.height,
                channels: self.channels,
            });
        }
        // u128: the product of three u32s and a small constant cannot
        // overflow, so the comparison with the declared u64 is exact.
        let expected = u128::from(self.width)
            * u128::from(self.height)
            * u128::from(self.channels)
            * self.encoding.bytes_per_value() as u128;
        if expected != u128::from(self.payload_len) {
            return Err(WireError::LengthMismatch {
                declared: self.payload_len,
                expected: expected.min(u128::from(u64::MAX)) as u64,
            });
        }
        if self.payload_len > max_payload_bytes {
            return Err(WireError::PayloadTooLarge {
                declared: self.payload_len,
                limit: max_payload_bytes,
            });
        }
        usize::try_from(self.payload_len).map_err(|_| WireError::PayloadTooLarge {
            declared: self.payload_len,
            limit: usize::MAX as u64,
        })
    }

    /// Decodes a received payload against this header: checksum first, then
    /// the byte-level field decode.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::ChecksumMismatch`] or the typed payload decode
    /// error. Call [`BinaryFrameHeader::checked_payload_len`] first; a
    /// payload of a different length than declared fails the size check of
    /// the inner decode.
    pub fn decode_payload(&self, payload: &[u8]) -> Result<ProbMap, WireError> {
        Ok(self.verified_payload(payload.to_vec())?.decode()?)
    }

    /// Verifies a received payload's checksum and wraps it as a
    /// [`ProbPayload`] *without decoding a single value* — the zero-copy
    /// ingest path: the bytes move from the socket buffer into the payload
    /// unchanged, and dequantization happens later, directly into the
    /// extraction scratch of whichever worker picks the frame up.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::ChecksumMismatch`] when the bytes do not match
    /// the declared CRC-32, and the typed shape/size error when the header's
    /// shape disagrees with the byte count. On error the payload bytes are
    /// dropped; the connection stays usable.
    pub fn verified_payload(&self, payload: Vec<u8>) -> Result<ProbPayload, WireError> {
        let computed = crc32(&payload);
        if computed != self.checksum {
            return Err(WireError::ChecksumMismatch {
                declared: self.checksum,
                computed,
            });
        }
        let payload = ProbPayload {
            width: self.width as usize,
            height: self.height as usize,
            channels: self.channels as usize,
            encoding: self.encoding,
            bytes: payload,
        };
        payload.checked_value_count()?;
        Ok(payload)
    }

    /// Renders the 36-byte fixed header.
    pub fn to_bytes(&self) -> [u8; BINARY_HEADER_LEN] {
        let mut bytes = [0u8; BINARY_HEADER_LEN];
        bytes[0] = BINARY_FRAME_MAGIC;
        bytes[1] = BINARY_FRAME_VERSION;
        bytes[2] = self.encoding.tag();
        bytes[3] = 0;
        bytes[4..12].copy_from_slice(&self.session.to_le_bytes());
        bytes[12..16].copy_from_slice(&self.width.to_le_bytes());
        bytes[16..20].copy_from_slice(&self.height.to_le_bytes());
        bytes[20..24].copy_from_slice(&self.channels.to_le_bytes());
        bytes[24..32].copy_from_slice(&self.payload_len.to_le_bytes());
        bytes[32..36].copy_from_slice(&self.checksum.to_le_bytes());
        bytes
    }
}

/// The declared payload length of a raw header buffer, read without any
/// validation — the one field a receiver needs even from a header that
/// fails [`BinaryFrameHeader::parse`], because it is what allows skipping
/// the payload and resynchronising on the next message. Kept here so the
/// byte offsets of the layout live in exactly one module.
pub fn declared_payload_len(header_bytes: &[u8; BINARY_HEADER_LEN]) -> u64 {
    le_u64(header_bytes, 24)
}

/// Encodes one frame submission as a binary frame (header + payload).
///
/// Single-allocation hot path: the payload is encoded straight into the
/// frame buffer after a header-sized placeholder, then the header (which
/// needs the payload's length and checksum) is written into place — no
/// second full-payload copy per frame.
///
/// # Panics
///
/// Panics if the field's dimensions do not fit `u32` — softmax fields are
/// camera images, and a >4-billion-pixel axis is a caller bug, not a wire
/// condition.
pub fn encode_binary_frame(session: u64, probs: &ProbMap, encoding: ProbEncoding) -> Vec<u8> {
    let payload_len =
        probs.width() * probs.height() * probs.num_classes() * encoding.bytes_per_value();
    let mut bytes = Vec::with_capacity(BINARY_HEADER_LEN + payload_len);
    bytes.resize(BINARY_HEADER_LEN, 0);
    probs.extend_payload_bytes(encoding, &mut bytes);
    debug_assert_eq!(bytes.len(), BINARY_HEADER_LEN + payload_len);
    let header = BinaryFrameHeader {
        session,
        encoding,
        width: u32::try_from(probs.width()).expect("field width fits u32"),
        height: u32::try_from(probs.height()).expect("field height fits u32"),
        channels: u32::try_from(probs.num_classes()).expect("channel count fits u32"),
        payload_len: payload_len as u64,
        checksum: crc32(&bytes[BINARY_HEADER_LEN..]),
    };
    bytes[..BINARY_HEADER_LEN].copy_from_slice(&header.to_bytes());
    bytes
}

/// Decodes one complete binary frame from a byte slice: header syntax,
/// payload bounds (against `max_payload_bytes`), checksum, field decode.
///
/// Total: returns a typed [`WireError`] on any malformed input — truncated,
/// corrupt, lying about its dimensions, over-long — and never panics. The
/// slice must contain exactly one frame (no trailing bytes).
///
/// # Errors
///
/// Any [`WireError`] variant, as produced by the stage that failed.
pub fn decode_binary_frame(
    bytes: &[u8],
    max_payload_bytes: u64,
) -> Result<(u64, ProbMap), WireError> {
    let header = BinaryFrameHeader::parse(bytes)?;
    let payload_len = header.checked_payload_len(max_payload_bytes)?;
    let body = &bytes[BINARY_HEADER_LEN..];
    if body.len() != payload_len {
        return Err(WireError::Truncated {
            needed: BINARY_HEADER_LEN + payload_len,
            found: bytes.len(),
        });
    }
    let probs = header.decode_payload(body)?;
    Ok((header.session, probs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A small field with non-trivial, exactly-representable values.
    fn sample_map(width: usize, height: usize, channels: usize, values: &[f64]) -> ProbMap {
        let mut map = ProbMap::uniform(width, height, channels);
        let mut cursor = values.iter().cycle();
        for y in 0..height {
            for x in 0..width {
                let dist: Vec<f64> = (0..channels).map(|_| *cursor.next().unwrap()).collect();
                map.set_distribution_unchecked(x, y, &dist);
            }
        }
        map
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips_bit_exactly_in_f64() {
        let map = sample_map(4, 3, 5, &[0.125, 0.5, 1.0 / 3.0, 0.0625, 1e-9]);
        let bytes = encode_binary_frame(42, &map, ProbEncoding::F64);
        assert_eq!(bytes.len(), BINARY_HEADER_LEN + 4 * 3 * 5 * 8);
        let (session, decoded) = decode_binary_frame(&bytes, 1 << 20).unwrap();
        assert_eq!(session, 42);
        assert_eq!(decoded, map);
    }

    #[test]
    fn declared_payload_len_reads_the_length_field_of_any_header() {
        let map = ProbMap::uniform(4, 3, 5);
        let bytes = encode_binary_frame(1, &map, ProbEncoding::F32);
        let header: [u8; BINARY_HEADER_LEN] = bytes[..BINARY_HEADER_LEN].try_into().unwrap();
        assert_eq!(declared_payload_len(&header), 4 * 3 * 5 * 4);
        // Still readable from a header that fails validation — that is the
        // point: it is what lets a receiver skip the payload and resync.
        let mut invalid = header;
        invalid[1] = 99;
        assert!(BinaryFrameHeader::parse(&invalid).is_err());
        assert_eq!(declared_payload_len(&invalid), 4 * 3 * 5 * 4);
    }

    #[test]
    fn header_syntax_errors_are_typed() {
        let map = ProbMap::uniform(2, 2, 3);
        let good = encode_binary_frame(1, &map, ProbEncoding::F32);

        let mut bad = good.clone();
        bad[0] = b'{';
        assert_eq!(
            BinaryFrameHeader::parse(&bad),
            Err(WireError::BadMagic(b'{'))
        );

        let mut bad = good.clone();
        bad[1] = 9;
        assert_eq!(
            BinaryFrameHeader::parse(&bad),
            Err(WireError::UnsupportedVersion(9))
        );

        let mut bad = good.clone();
        bad[2] = 77;
        assert_eq!(
            BinaryFrameHeader::parse(&bad),
            Err(WireError::UnknownEncoding(77))
        );

        let mut bad = good.clone();
        bad[3] = 1;
        assert_eq!(
            BinaryFrameHeader::parse(&bad),
            Err(WireError::NonZeroReserved(1))
        );

        assert_eq!(
            BinaryFrameHeader::parse(&good[..10]),
            Err(WireError::Truncated {
                needed: BINARY_HEADER_LEN,
                found: 10
            })
        );
    }

    #[test]
    fn headers_that_lie_about_their_shape_are_rejected_before_allocation() {
        let map = ProbMap::uniform(2, 2, 3);
        let good = encode_binary_frame(1, &map, ProbEncoding::F64);

        // Zero dimension.
        let mut bad = good.clone();
        bad[12..16].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_binary_frame(&bad, 1 << 20),
            Err(WireError::ZeroDimension { .. })
        ));

        // Inflated width with the original payload length: mismatch.
        let mut bad = good.clone();
        bad[12..16].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            decode_binary_frame(&bad, 1 << 20),
            Err(WireError::LengthMismatch { .. })
        ));

        // A consistent header whose payload would be enormous: the size cap
        // fires without any allocation (the body is absent entirely).
        let huge = BinaryFrameHeader {
            session: 0,
            encoding: ProbEncoding::F64,
            width: 1 << 20,
            height: 1 << 20,
            channels: 64,
            payload_len: (1u64 << 40) * 64 * 8,
            checksum: 0,
        };
        assert!(matches!(
            decode_binary_frame(&huge.to_bytes(), 1 << 20),
            Err(WireError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_payloads_fail_the_checksum() {
        let map = sample_map(3, 2, 4, &[0.25, 0.5, 0.125]);
        let mut bytes = encode_binary_frame(5, &map, ProbEncoding::U16);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_binary_frame(&bytes, 1 << 20),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_frames_report_how_much_was_needed() {
        let map = ProbMap::uniform(2, 2, 3);
        let bytes = encode_binary_frame(1, &map, ProbEncoding::U16);
        let cut = bytes.len() - 5;
        assert_eq!(
            decode_binary_frame(&bytes[..cut], 1 << 20),
            Err(WireError::Truncated {
                needed: bytes.len(),
                found: cut
            })
        );
    }

    proptest! {
        #[test]
        fn prop_frames_roundtrip(
            dims in (1usize..5, 1usize..4, 1usize..6),
            values in proptest::collection::vec(0.0f64..=1.0, 16),
            session in any::<u64>(),
            tag in 0u8..3
        ) {
            let (width, height, channels) = dims;
            let encoding = ProbEncoding::from_tag(tag).expect("tag in range");
            let map = sample_map(width, height, channels, &values);
            let bytes = encode_binary_frame(session, &map, encoding);
            let (decoded_session, decoded) = decode_binary_frame(&bytes, u64::MAX)
                .expect("well-formed frames decode");
            prop_assert_eq!(decoded_session, session);
            if encoding.is_lossless() {
                prop_assert_eq!(&decoded, &map);
            } else {
                // Lossy modes: decoding is stable (a relay re-encoding the
                // decoded field reproduces the same frame bytes).
                prop_assert_eq!(
                    encode_binary_frame(session, &decoded, encoding),
                    bytes
                );
            }
        }

        #[test]
        fn prop_single_byte_corruption_is_detected(
            values in proptest::collection::vec(0.0f64..=1.0, 12),
            position in any::<u64>(),
            flip in 1u8..=255
        ) {
            // Any single-byte corruption outside the session field must be
            // detected (the session id is payload-opaque routing data; the
            // checksum covers the payload, the semantic checks the header).
            let map = sample_map(2, 2, 3, &values);
            let good = encode_binary_frame(3, &map, ProbEncoding::F64);
            let position = (position % good.len() as u64) as usize;
            prop_assume!(!(4..12).contains(&position));
            let mut bad = good.clone();
            bad[position] ^= flip;
            prop_assert!(decode_binary_frame(&bad, u64::MAX).is_err());
        }

        #[test]
        fn prop_truncation_never_decodes(
            values in proptest::collection::vec(0.0f64..=1.0, 12),
            cut in any::<u64>()
        ) {
            let map = sample_map(2, 2, 3, &values);
            let bytes = encode_binary_frame(3, &map, ProbEncoding::F32);
            let cut = (cut % bytes.len() as u64) as usize;
            prop_assert!(matches!(
                decode_binary_frame(&bytes[..cut], u64::MAX),
                Err(WireError::Truncated { .. })
            ));
        }

        #[test]
        fn prop_arbitrary_bytes_never_panic(
            bytes in proptest::collection::vec(0u8..=255, 0..128),
            force_magic in any::<bool>()
        ) {
            let mut bytes = bytes;
            if force_magic && !bytes.is_empty() {
                bytes[0] = BINARY_FRAME_MAGIC;
                if bytes.len() > 1 {
                    bytes[1] = BINARY_FRAME_VERSION;
                }
            }
            // Total decoding: any byte soup yields Ok or a typed error.
            let _ = decode_binary_frame(&bytes, 1 << 16);
        }
    }
}
