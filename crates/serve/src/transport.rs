//! The readiness-driven connection transport.
//!
//! One event-loop thread owns the listener and **every** client socket,
//! nonblocking, multiplexed through the vendored [`mio`] poller (epoll on
//! Linux) — no thread per connection, so ten thousand idle cameras cost ten
//! thousand small buffers, not ten thousand stacks, and there is no
//! `JoinHandle` to leak per connection ever accepted: a connection's entire
//! footprint dies with its slot in the event loop's table.
//!
//! Per connection the loop runs a byte-level state machine over one growable
//! input buffer: at each message boundary the first byte routes to either a
//! JSON line (always starts with `{`) or a binary frame (the magic byte),
//! mirroring the peek-based routing of the old blocking transport, including
//! resynchronisation — a binary frame whose header is readable but invalid
//! is skipped by its declared length, and only an unbounded declared payload
//! (or an oversized newline-free line) forces a disconnect.
//!
//! Inference never runs on the event loop. Frame, `stats` and `close`
//! operations become [`Job`]s on the session's shard queue; the shard worker
//! posts a [`Completion`] back through a channel and wakes the poller. The
//! loop keeps responses in request order with a per-connection sequence of
//! response slots: every request allocates the next slot, inline operations
//! fill theirs immediately, queued operations fill theirs on completion, and
//! the write side only ever flushes the longest filled prefix.

use crate::protocol::{ErrorCode, FrameFormat, Request, Response};
use crate::server::{bad_request, shutting_down_error, unknown_session_error, Shared};
use crate::shard::{Completion, ConnId, Job, JobKind, JobPayload, Session, Shard};
use crate::wire::{self, BinaryFrameHeader, BINARY_FRAME_MAGIC, BINARY_HEADER_LEN};
use metaseg::DispersionPrecision;
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};

/// Poll token of the listener.
const LISTENER: usize = 0;
/// Poll token of the cross-thread waker.
const WAKER: usize = 1;
/// First token handed to client connections.
const FIRST_CONN: usize = 2;

/// A growable input buffer with an O(1) consume offset; compacts lazily so
/// steady-state parsing never memmoves per message.
struct ByteBuf {
    data: Vec<u8>,
    start: usize,
}

impl ByteBuf {
    fn new() -> ByteBuf {
        ByteBuf {
            data: Vec::new(),
            start: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn len(&self) -> usize {
        self.data.len() - self.start
    }

    fn extend(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    fn consume(&mut self, count: usize) {
        self.start += count;
        debug_assert!(self.start <= self.data.len());
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        } else if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Copies out and consumes exactly `count` bytes.
    fn take(&mut self, count: usize) -> Vec<u8> {
        let taken = self.as_slice()[..count].to_vec();
        self.consume(count);
        taken
    }
}

/// Where the byte-level state machine stands between reads.
enum ReadState {
    /// At a message boundary: route on the first byte.
    Route,
    /// A valid binary header was consumed; accumulating its payload.
    BinaryPayload {
        header: BinaryFrameHeader,
        needed: usize,
    },
    /// A rejected binary frame's payload is being discarded so the stream
    /// resynchronises at the next message boundary (the typed error response
    /// was already slotted when the header was consumed).
    BinarySkip { remaining: usize },
}

/// One client connection: socket, parse state, sessions, and the ordered
/// response slots.
struct Conn {
    stream: TcpStream,
    id: ConnId,
    inbuf: ByteBuf,
    outbuf: Vec<u8>,
    out_start: usize,
    read_state: ReadState,
    sessions: HashMap<u64, Arc<Mutex<Session>>>,
    /// Whether binary frame submissions have been negotiated.
    binary_frames: bool,
    /// Negotiated dispersion-scan precision for this connection's frames.
    dispersion: DispersionPrecision,
    /// Response slots in request order: `pending[i]` answers request
    /// `base_seq + i`. `None` slots await a shard completion.
    pending: VecDeque<Option<Response>>,
    base_seq: u64,
    /// Responses flushed, then close — set by unrecoverable protocol errors
    /// that still deserve an answer.
    closing: bool,
    /// Whether the poll registration currently includes write interest.
    write_interest: bool,
}

impl Conn {
    fn new(stream: TcpStream, id: ConnId) -> Conn {
        Conn {
            stream,
            id,
            inbuf: ByteBuf::new(),
            outbuf: Vec::new(),
            out_start: 0,
            read_state: ReadState::Route,
            sessions: HashMap::new(),
            binary_frames: false,
            dispersion: DispersionPrecision::F64,
            pending: VecDeque::new(),
            base_seq: 0,
            closing: false,
            write_interest: false,
        }
    }

    /// Allocates the next response slot and returns its sequence number.
    fn alloc_slot(&mut self) -> u64 {
        self.pending.push_back(None);
        self.base_seq + self.pending.len() as u64 - 1
    }

    /// Fills a previously allocated slot.
    fn fill(&mut self, seq: u64, response: Response) {
        let index = seq.checked_sub(self.base_seq).map(|i| i as usize);
        if let Some(slot) = index.and_then(|i| self.pending.get_mut(i)) {
            *slot = Some(response);
        }
    }

    /// Moves every leading filled slot into the output buffer, in order.
    fn flush_ready(&mut self) {
        while matches!(self.pending.front(), Some(Some(_))) {
            let response = self
                .pending
                .pop_front()
                .expect("front checked above")
                .expect("front checked above");
            self.base_seq += 1;
            self.outbuf.extend_from_slice(response.encode().as_bytes());
            self.outbuf.push(b'\n');
        }
    }

    fn out_len(&self) -> usize {
        self.outbuf.len() - self.out_start
    }

    /// Writes as much of the output buffer as the socket accepts.
    /// `Ok(())` leaves the connection alive; `Err` means it is gone.
    fn write_pending(&mut self) -> Result<(), ()> {
        while self.out_start < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_start..]) {
                Ok(0) => return Err(()),
                Ok(written) => self.out_start += written,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if self.out_start == self.outbuf.len() {
            self.outbuf.clear();
            self.out_start = 0;
        } else if self.out_start > 4096 && self.out_start * 2 > self.outbuf.len() {
            self.outbuf.drain(..self.out_start);
            self.out_start = 0;
        }
        Ok(())
    }

    /// Whether everything this connection will ever say has been said.
    fn finished_closing(&self) -> bool {
        self.closing && self.pending.is_empty() && self.out_len() == 0
    }
}

/// What driving a connection's read side concluded.
#[derive(PartialEq, Eq)]
enum ReadOutcome {
    Alive,
    /// EOF, transport error, or an unanswerable protocol violation (e.g. an
    /// oversized newline-free line): drop the connection without a response.
    Dead,
}

/// The event loop: owns the listener, the poller and every connection slot.
pub(crate) struct Transport {
    listener: TcpListener,
    poll: Poll,
    waker: Arc<Waker>,
    shared: Arc<Shared>,
    shards: Arc<[Shard]>,
    completions: Receiver<Completion>,
    /// Connection slots, indexed by `token - FIRST_CONN`; freed slots are
    /// reused (with a fresh generation) before the table grows.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    /// Jobs handed to shards whose completions have not come back yet; the
    /// drain phase of shutdown ends when this reaches zero.
    outstanding: usize,
}

impl Transport {
    pub(crate) fn new(
        listener: TcpListener,
        poll: Poll,
        waker: Arc<Waker>,
        shared: Arc<Shared>,
        shards: Arc<[Shard]>,
        completions: Receiver<Completion>,
    ) -> Transport {
        Transport {
            listener,
            poll,
            waker,
            shared,
            shards,
            completions,
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            outstanding: 0,
        }
    }

    /// Runs until shutdown: poll, dispatch, pump completions. After the
    /// shutdown flag is raised the loop stops accepting and reading but
    /// keeps pumping completions and flushing writes until every job handed
    /// to the shards has been answered — no accepted frame is ever silently
    /// dropped.
    pub(crate) fn run(mut self) {
        let mut events = Events::with_capacity(256);
        let timeout = self.shared.config.poll_interval();
        loop {
            let draining = self.shared.shutting_down.load(Ordering::SeqCst);
            if draining && self.outstanding == 0 {
                self.final_flush();
                return;
            }
            if self.poll.poll(&mut events, Some(timeout)).is_err() {
                // A failing poller cannot be recovered; drain what we can
                // via the completion channel and exit.
                self.pump_completions();
                continue;
            }
            let mut touched: Vec<usize> = Vec::new();
            for event in &events {
                match event.token() {
                    Token(LISTENER) => {
                        if !draining {
                            self.accept_all();
                        }
                    }
                    Token(WAKER) => self.waker.drain(),
                    Token(token) => {
                        self.conn_event(token, event.is_readable(), event.is_writable(), draining);
                        touched.push(token);
                    }
                }
            }
            touched.extend(self.pump_completions());
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                self.after_io(token);
            }
        }
    }

    /// Accepts until the listener would block. Transient errors (aborted
    /// handshakes) must not kill the server; the next readiness event
    /// retries.
    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let index = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let token = index + FIRST_CONN;
                    if self
                        .poll
                        .register(&stream, Token(token), Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(index);
                        continue;
                    }
                    self.next_generation += 1;
                    let id = ConnId {
                        token,
                        generation: self.next_generation,
                    };
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    self.conns[index] = Some(Conn::new(stream, id));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: usize, readable: bool, writable: bool, draining: bool) {
        let index = token - FIRST_CONN;
        let Some(mut conn) = self.conns.get_mut(index).and_then(Option::take) else {
            return;
        };
        let mut alive = true;
        if writable && conn.write_pending().is_err() {
            alive = false;
        }
        if alive && readable && !draining && !conn.closing {
            alive = self.drive_read(&mut conn) == ReadOutcome::Alive;
        }
        if alive {
            self.conns[index] = Some(conn);
        } else {
            self.teardown(conn);
        }
    }

    /// Reads until the socket would block, feeding the parse state machine
    /// after every chunk.
    fn drive_read(&mut self, conn: &mut Conn) -> ReadOutcome {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => return ReadOutcome::Dead,
                Ok(count) => {
                    conn.inbuf.extend(&scratch[..count]);
                    if self.parse_messages(conn) == ReadOutcome::Dead {
                        return ReadOutcome::Dead;
                    }
                    if conn.closing {
                        return ReadOutcome::Alive;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return ReadOutcome::Alive,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Dead,
            }
        }
    }

    /// Consumes every complete message currently buffered.
    fn parse_messages(&mut self, conn: &mut Conn) -> ReadOutcome {
        loop {
            if conn.closing {
                return ReadOutcome::Alive;
            }
            match conn.read_state {
                ReadState::Route => {
                    let buffered = conn.inbuf.as_slice();
                    let Some(&first) = buffered.first() else {
                        return ReadOutcome::Alive;
                    };
                    if first == BINARY_FRAME_MAGIC {
                        if buffered.len() < BINARY_HEADER_LEN {
                            return ReadOutcome::Alive;
                        }
                        self.route_binary_header(conn);
                    } else {
                        match buffered.iter().position(|&b| b == b'\n') {
                            Some(position) => {
                                let line = conn.inbuf.take(position + 1);
                                self.handle_line(conn, &line);
                            }
                            None => {
                                // The transport-level analogue of the JSON
                                // parser's nesting-depth cap: a peer that
                                // never sends a newline must not grow server
                                // memory without bound. No response — there
                                // is no parseable request to answer.
                                if buffered.len() > self.shared.config.max_line_bytes {
                                    return ReadOutcome::Dead;
                                }
                                return ReadOutcome::Alive;
                            }
                        }
                    }
                }
                ReadState::BinaryPayload { ref header, needed } => {
                    if conn.inbuf.len() < needed {
                        return ReadOutcome::Alive;
                    }
                    let header = *header;
                    let payload = conn.inbuf.take(needed);
                    conn.read_state = ReadState::Route;
                    let seq = conn.alloc_slot();
                    // Zero-copy ingest: verify the checksum, then hand the
                    // wire bytes to the shard unchanged — dequantization
                    // happens in the worker, straight into the session's
                    // extraction scratch.
                    match header.verified_payload(payload) {
                        Ok(payload) => {
                            self.shared.binary_frames.fetch_add(1, Ordering::Relaxed);
                            if let Some(response) = self.submit_frame(
                                conn,
                                seq,
                                header.session,
                                JobPayload::Encoded(payload),
                            ) {
                                conn.fill(seq, response);
                            }
                        }
                        Err(e) => conn.fill(seq, bad_request(e)),
                    }
                }
                ReadState::BinarySkip { remaining } => {
                    let discard = remaining.min(conn.inbuf.len());
                    conn.inbuf.consume(discard);
                    let remaining = remaining - discard;
                    if remaining > 0 {
                        conn.read_state = ReadState::BinarySkip { remaining };
                        return ReadOutcome::Alive;
                    }
                    conn.read_state = ReadState::Route;
                }
            }
        }
    }

    /// Routes a buffered 36-byte binary header: a valid header either starts
    /// payload accumulation or (for a frame doomed regardless of its
    /// contents — binary framing not negotiated, or an unknown session id)
    /// slots the typed rejection and discards the payload without ever
    /// buffering it for decode. An invalid header is answered and skipped by
    /// its declared length when that is bounded; otherwise the connection is
    /// answered and closed (reading an unbounded payload would defeat the
    /// memory cap, and skipping terabytes is indistinguishable from a hung
    /// connection).
    fn route_binary_header(&mut self, conn: &mut Conn) {
        let mut header_bytes = [0u8; BINARY_HEADER_LEN];
        header_bytes.copy_from_slice(&conn.inbuf.as_slice()[..BINARY_HEADER_LEN]);
        conn.inbuf.consume(BINARY_HEADER_LEN);
        let cap = self.shared.config.max_line_bytes as u64;
        let validated = BinaryFrameHeader::parse(&header_bytes)
            .and_then(|header| header.checked_payload_len(cap).map(|len| (header, len)));
        match validated {
            Ok((header, payload_len)) => {
                let rejection = if !conn.binary_frames {
                    Some(bad_request(
                        "binary framing was not negotiated on this connection \
                         (send the negotiate op first)",
                    ))
                } else if !conn.sessions.contains_key(&header.session) {
                    Some(unknown_session_error(header.session))
                } else {
                    None
                };
                match rejection {
                    Some(response) => {
                        let seq = conn.alloc_slot();
                        conn.fill(seq, response);
                        conn.read_state = ReadState::BinarySkip {
                            remaining: payload_len,
                        };
                    }
                    None => {
                        conn.read_state = ReadState::BinaryPayload {
                            header,
                            needed: payload_len,
                        };
                    }
                }
            }
            Err(e) => {
                let seq = conn.alloc_slot();
                conn.fill(seq, bad_request(e));
                // The declared length sits at a fixed offset whatever else
                // is wrong with the header; use it to resynchronise if it
                // is bounded.
                let declared = wire::declared_payload_len(&header_bytes);
                if declared <= cap {
                    conn.read_state = ReadState::BinarySkip {
                        remaining: declared as usize,
                    };
                } else {
                    conn.closing = true;
                }
            }
        }
    }

    /// Handles one JSON request line (trailing newline included).
    fn handle_line(&mut self, conn: &mut Conn, line: &[u8]) {
        let seq = conn.alloc_slot();
        // Strict UTF-8 at the trust boundary: lossy replacement would
        // silently alter string fields (e.g. a camera name) inside an
        // otherwise well-formed request.
        let request = match std::str::from_utf8(line) {
            Ok(text) => match Request::decode(text.trim_end()) {
                Ok(request) => request,
                Err(e) => {
                    conn.fill(seq, bad_request(e));
                    return;
                }
            },
            Err(e) => {
                conn.fill(
                    seq,
                    bad_request(format_args!("request line is not valid UTF-8: {e}")),
                );
                return;
            }
        };
        if let Some(response) = self.handle_request(conn, seq, request) {
            conn.fill(seq, response);
        }
    }

    /// Executes one decoded request. `Some` is an immediate response for the
    /// allocated slot; `None` means the slot will be filled by a shard
    /// completion.
    fn handle_request(&mut self, conn: &mut Conn, seq: u64, request: Request) -> Option<Response> {
        match request {
            Request::Ping => Some(Response::Pong),
            Request::Negotiate { format, dispersion } => {
                // Binary framing is a per-connection capability switch;
                // control operations and responses stay JSON lines either
                // way. The payload encoding of each binary frame is
                // self-describing, so the server only needs to remember
                // "binary allowed". The dispersion precision applies to
                // every frame submitted after this confirmation, whatever
                // its format.
                conn.binary_frames = matches!(format, FrameFormat::Binary(_));
                conn.dispersion = dispersion;
                Some(Response::Negotiated { format, dispersion })
            }
            Request::Open { model, camera } => {
                if self.shared.shutting_down.load(Ordering::SeqCst) {
                    return Some(shutting_down_error());
                }
                let Some(entry) = self.shared.registry.get(&model) else {
                    return Some(Response::Error {
                        code: ErrorCode::UnknownModel,
                        message: format!("no model named `{model}` is registered"),
                    });
                };
                let engine = entry.open_stream();
                let series_length = engine.series_length();
                let session = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
                conn.sessions
                    .insert(session, Arc::new(Mutex::new(Session { engine, camera })));
                self.shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
                Some(Response::Opened {
                    session,
                    series_length,
                })
            }
            Request::Frame { session, probs } => {
                self.submit_frame(conn, seq, session, JobPayload::Decoded(probs))
            }
            Request::Stats { session } => self.submit_control(conn, seq, session, JobKind::Stats),
            Request::Close { session } => {
                // Evict first so later requests get the honest
                // unknown-session answer even while the final counters are
                // still in flight on the shard.
                match conn.sessions.remove(&session) {
                    Some(state) => {
                        let shard = self.shard_for(session);
                        let job = Job {
                            session_id: session,
                            session: state,
                            kind: JobKind::Close,
                            conn: conn.id,
                            seq,
                        };
                        if shard.submit_control(job) {
                            self.outstanding += 1;
                            None
                        } else {
                            Some(shutting_down_error())
                        }
                    }
                    None => Some(unknown_session_error(session)),
                }
            }
        }
    }

    fn shard_for(&self, session: u64) -> &Shard {
        &self.shards[(session % self.shards.len() as u64) as usize]
    }

    /// Submits one frame payload to the session's shard — the shared tail of
    /// the JSON and binary submission paths.
    fn submit_frame(
        &mut self,
        conn: &mut Conn,
        seq: u64,
        session: u64,
        payload: JobPayload,
    ) -> Option<Response> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Some(shutting_down_error());
        }
        let Some(state) = conn.sessions.get(&session) else {
            return Some(unknown_session_error(session));
        };
        // Decoded payloads cross a trust boundary: an inconsistent shape
        // would panic deep inside metric extraction. (The binary path
        // validates shape against byte count before the job is built.)
        if let JobPayload::Decoded(probs) = &payload {
            if !probs.shape_consistent() {
                return Some(Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "frame payload has an inconsistent shape".to_string(),
                });
            }
        }
        let job = Job {
            session_id: session,
            session: Arc::clone(state),
            kind: JobKind::Frame {
                payload,
                dispersion: conn.dispersion,
            },
            conn: conn.id,
            seq,
        };
        if self.shard_for(session).submit_frame(job) {
            self.outstanding += 1;
            None
        } else {
            Some(Response::Error {
                code: ErrorCode::Backpressure,
                message: format!(
                    "inference queue is full ({} jobs); retry after backing off",
                    self.shared.config.queue_depth.max(1)
                ),
            })
        }
    }

    /// Submits a `stats`-style control job, answering inline when the
    /// session is unknown.
    fn submit_control(
        &mut self,
        conn: &mut Conn,
        seq: u64,
        session: u64,
        kind: JobKind,
    ) -> Option<Response> {
        let Some(state) = conn.sessions.get(&session) else {
            return Some(unknown_session_error(session));
        };
        let job = Job {
            session_id: session,
            session: Arc::clone(state),
            kind,
            conn: conn.id,
            seq,
        };
        if self.shard_for(session).submit_control(job) {
            self.outstanding += 1;
            None
        } else {
            Some(shutting_down_error())
        }
    }

    /// Drains the completion channel into connection response slots,
    /// returning the tokens that received something. Completions for
    /// connections that died in flight (or whose slot was reused — the
    /// generation check) are dropped after the accounting.
    fn pump_completions(&mut self) -> Vec<usize> {
        let mut touched = Vec::new();
        while let Ok(completion) = self.completions.try_recv() {
            self.outstanding = self.outstanding.saturating_sub(1);
            let index = completion.conn.token - FIRST_CONN;
            if let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) {
                if conn.id == completion.conn {
                    if let Some(session) = completion.evict {
                        conn.sessions.remove(&session);
                    }
                    conn.fill(completion.seq, completion.response);
                    touched.push(completion.conn.token);
                }
            }
        }
        touched
    }

    /// Post-I/O bookkeeping for one connection: move ready responses to the
    /// output buffer, push bytes, settle write interest, and finish a
    /// deferred close once everything has been said.
    fn after_io(&mut self, token: usize) {
        let index = token - FIRST_CONN;
        let Some(mut conn) = self.conns.get_mut(index).and_then(Option::take) else {
            return;
        };
        conn.flush_ready();
        if conn.write_pending().is_err() || conn.finished_closing() {
            self.teardown(conn);
            return;
        }
        let want_write = conn.out_len() > 0;
        if want_write != conn.write_interest {
            conn.write_interest = want_write;
            let interest = if want_write {
                Interest::READABLE | Interest::WRITABLE
            } else {
                Interest::READABLE
            };
            let _ = self.poll.reregister(&conn.stream, Token(token), interest);
        }
        self.conns[index] = Some(conn);
    }

    /// Releases a connection: deregister, free the slot (its generation is
    /// retired, so in-flight completions for it are dropped on receipt), and
    /// drop the socket and every session it owned.
    fn teardown(&mut self, conn: Conn) {
        let _ = self.poll.deregister(&conn.stream);
        self.free.push(conn.id.token - FIRST_CONN);
    }

    /// One best-effort flush of every connection on the way out: shutdown
    /// has drained all outstanding jobs, so anything still buffered is a
    /// complete response that the peer may be waiting on.
    fn final_flush(&mut self) {
        for slot in &mut self.conns {
            if let Some(conn) = slot.as_mut() {
                conn.flush_ready();
                let _ = conn.write_pending();
            }
        }
    }
}
