//! The readiness-driven connection transport.
//!
//! One event-loop thread owns the listener and **every** client socket,
//! nonblocking, multiplexed through the vendored [`mio`] poller (epoll on
//! Linux) — no thread per connection, so ten thousand idle cameras cost ten
//! thousand small buffers, not ten thousand stacks, and there is no
//! `JoinHandle` to leak per connection ever accepted: a connection's entire
//! footprint dies with its slot in the event loop's table.
//!
//! Per connection the loop runs a byte-level state machine over one growable
//! input buffer: at each message boundary the first byte routes to either a
//! JSON line (always starts with `{`) or a binary frame (the magic byte),
//! mirroring the peek-based routing of the old blocking transport, including
//! resynchronisation — a binary frame whose header is readable but invalid
//! is skipped by its declared length, and only an unbounded declared payload
//! (or an oversized newline-free line) forces a disconnect.
//!
//! Inference never runs on the event loop. Frame, `stats` and `close`
//! operations become [`Job`]s on the session's shard queue; the shard worker
//! posts a [`Completion`] back through a channel and wakes the poller. The
//! loop keeps responses in request order with a per-connection sequence of
//! response slots: every request allocates the next slot, inline operations
//! fill theirs immediately, queued operations fill theirs on completion, and
//! the write side only ever flushes the longest filled prefix.

use crate::protocol::{ErrorCode, FrameFormat, Request, Response};
use crate::server::{
    bad_request, overloaded_error, shutting_down_error, unknown_session_error, ServerConfig, Shared,
};
use crate::shard::{Completion, ConnId, Job, JobKind, JobPayload, Session, Shard};
use crate::wire::{self, BinaryFrameHeader, BINARY_FRAME_MAGIC, BINARY_HEADER_LEN};
use metaseg::DispersionPrecision;
use mio::{Events, Interest, Poll, Token, Waker};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Poll token of the listener.
const LISTENER: usize = 0;
/// Poll token of the cross-thread waker.
const WAKER: usize = 1;
/// First token handed to client connections.
const FIRST_CONN: usize = 2;

/// Deadline-heap entry kind: a connection's idle / mid-message deadline.
const DL_CONN: u8 = 0;
/// Deadline-heap entry kind: an orphaned session's linger expiry.
const DL_ORPHAN: u8 = 1;

/// One lazily-invalidated deadline-heap entry: `(when, kind, a, b)` where
/// `(a, b)` is `(token, generation)` for [`DL_CONN`] and `(session, 0)` for
/// [`DL_ORPHAN`]. Entries are never removed on activity — a popped entry is
/// revalidated against the live state and re-pushed at the true deadline,
/// so the heap stays O(log n) per event with no cancellation bookkeeping.
type DeadlineEntry = (Instant, u8, u64, u64);

/// A growable input buffer with an O(1) consume offset; compacts lazily so
/// steady-state parsing never memmoves per message.
struct ByteBuf {
    data: Vec<u8>,
    start: usize,
}

impl ByteBuf {
    fn new() -> ByteBuf {
        ByteBuf {
            data: Vec::new(),
            start: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn len(&self) -> usize {
        self.data.len() - self.start
    }

    fn extend(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    fn consume(&mut self, count: usize) {
        self.start += count;
        debug_assert!(self.start <= self.data.len());
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        } else if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Copies out and consumes exactly `count` bytes.
    fn take(&mut self, count: usize) -> Vec<u8> {
        let taken = self.as_slice()[..count].to_vec();
        self.consume(count);
        taken
    }
}

/// Where the byte-level state machine stands between reads.
enum ReadState {
    /// At a message boundary: route on the first byte.
    Route,
    /// A valid binary header was consumed; accumulating its payload.
    BinaryPayload {
        header: BinaryFrameHeader,
        needed: usize,
    },
    /// A rejected binary frame's payload is being discarded so the stream
    /// resynchronises at the next message boundary (the typed error response
    /// was already slotted when the header was consumed).
    BinarySkip { remaining: usize },
}

/// One client connection: socket, parse state, sessions, and the ordered
/// response slots.
struct Conn {
    stream: TcpStream,
    id: ConnId,
    inbuf: ByteBuf,
    outbuf: Vec<u8>,
    out_start: usize,
    read_state: ReadState,
    /// Ids of the sessions this connection currently owns; the session
    /// state itself lives in the transport's session table so it can
    /// outlive the connection (see [`SessionEntry`]).
    sessions: HashSet<u64>,
    /// When the socket last produced bytes; deadlines measure from here.
    last_activity: Instant,
    /// The earliest deadline-heap entry currently scheduled for this
    /// connection (`None` when none is); avoids pushing a heap entry per
    /// read.
    scheduled_deadline: Option<Instant>,
    /// Whether binary frame submissions have been negotiated.
    binary_frames: bool,
    /// Negotiated dispersion-scan precision for this connection's frames.
    dispersion: DispersionPrecision,
    /// Response slots in request order: `pending[i]` answers request
    /// `base_seq + i`. `None` slots await a shard completion.
    pending: VecDeque<Option<Response>>,
    base_seq: u64,
    /// Responses flushed, then close — set by unrecoverable protocol errors
    /// that still deserve an answer.
    closing: bool,
    /// Whether the poll registration currently includes write interest.
    write_interest: bool,
}

impl Conn {
    fn new(stream: TcpStream, id: ConnId) -> Conn {
        Conn {
            stream,
            id,
            inbuf: ByteBuf::new(),
            outbuf: Vec::new(),
            out_start: 0,
            read_state: ReadState::Route,
            sessions: HashSet::new(),
            last_activity: Instant::now(),
            scheduled_deadline: None,
            binary_frames: false,
            dispersion: DispersionPrecision::F64,
            pending: VecDeque::new(),
            base_seq: 0,
            closing: false,
            write_interest: false,
        }
    }

    /// Allocates the next response slot and returns its sequence number.
    fn alloc_slot(&mut self) -> u64 {
        self.pending.push_back(None);
        self.base_seq + self.pending.len() as u64 - 1
    }

    /// Fills a previously allocated slot.
    fn fill(&mut self, seq: u64, response: Response) {
        let index = seq.checked_sub(self.base_seq).map(|i| i as usize);
        if let Some(slot) = index.and_then(|i| self.pending.get_mut(i)) {
            *slot = Some(response);
        }
    }

    /// Moves every leading filled slot into the output buffer, in order.
    fn flush_ready(&mut self) {
        while matches!(self.pending.front(), Some(Some(_))) {
            let response = self
                .pending
                .pop_front()
                .expect("front checked above")
                .expect("front checked above");
            self.base_seq += 1;
            self.outbuf.extend_from_slice(response.encode().as_bytes());
            self.outbuf.push(b'\n');
        }
    }

    fn out_len(&self) -> usize {
        self.outbuf.len() - self.out_start
    }

    /// Writes as much of the output buffer as the socket accepts.
    /// `Ok(())` leaves the connection alive; `Err` means it is gone.
    fn write_pending(&mut self) -> Result<(), ()> {
        while self.out_start < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_start..]) {
                Ok(0) => return Err(()),
                Ok(written) => self.out_start += written,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if self.out_start == self.outbuf.len() {
            self.outbuf.clear();
            self.out_start = 0;
        } else if self.out_start > 4096 && self.out_start * 2 > self.outbuf.len() {
            self.outbuf.drain(..self.out_start);
            self.out_start = 0;
        }
        Ok(())
    }

    /// Whether everything this connection will ever say has been said.
    fn finished_closing(&self) -> bool {
        self.closing && self.pending.is_empty() && self.out_len() == 0
    }

    /// When this connection's deadline clock would expire, under the
    /// configured timeouts: the (shorter) read deadline while a message is
    /// partially buffered, the idle deadline while truly quiet, and no
    /// deadline at all while a response is in flight on a shard — a
    /// connection waiting on *us* is not idle. `None` means "no deadline".
    fn effective_deadline(&self, config: &ServerConfig) -> Option<Instant> {
        let mid_message = self.inbuf.len() > 0 || !matches!(self.read_state, ReadState::Route);
        let millis = if mid_message {
            config.read_timeout_ms
        } else if self.pending.is_empty() {
            config.idle_timeout_ms
        } else {
            0
        };
        (millis > 0).then(|| self.last_activity + Duration::from_millis(millis))
    }
}

/// What driving a connection's read side concluded.
#[derive(PartialEq, Eq)]
enum ReadOutcome {
    Alive,
    /// EOF, transport error, or an unanswerable protocol violation (e.g. an
    /// oversized newline-free line): drop the connection without a response.
    Dead,
}

/// A session in the transport's table. Sessions are keyed by id — not by
/// connection — so a session survives the death of the connection that
/// opened it: the entry is *orphaned* (owner cleared, linger clock started)
/// and a reconnecting client re-attaches with `resume` any time before the
/// linger expires.
struct SessionEntry {
    state: Arc<Mutex<Session>>,
    /// The connection currently allowed to drive this session; `None`
    /// while orphaned.
    owner: Option<ConnId>,
    /// When the owning connection died (`None` while owned).
    orphaned_at: Option<Instant>,
}

/// The event loop: owns the listener, the poller and every connection slot.
pub(crate) struct Transport {
    listener: TcpListener,
    poll: Poll,
    waker: Arc<Waker>,
    shared: Arc<Shared>,
    shards: Arc<[Shard]>,
    completions: Receiver<Completion>,
    /// Connection slots, indexed by `token - FIRST_CONN`; freed slots are
    /// reused (with a fresh generation) before the table grows.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    /// Jobs handed to shards whose completions have not come back yet; the
    /// drain phase of shutdown ends when this reaches zero.
    outstanding: usize,
    /// Every open session, keyed by id (see [`SessionEntry`]).
    sessions: HashMap<u64, SessionEntry>,
    /// Min-heap of pending deadlines, lazily invalidated (see
    /// [`DeadlineEntry`]), swept once per poll tick.
    deadlines: BinaryHeap<Reverse<DeadlineEntry>>,
}

impl Transport {
    pub(crate) fn new(
        listener: TcpListener,
        poll: Poll,
        waker: Arc<Waker>,
        shared: Arc<Shared>,
        shards: Arc<[Shard]>,
        completions: Receiver<Completion>,
    ) -> Transport {
        Transport {
            listener,
            poll,
            waker,
            shared,
            shards,
            completions,
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            outstanding: 0,
            sessions: HashMap::new(),
            deadlines: BinaryHeap::new(),
        }
    }

    /// Runs until shutdown: poll, dispatch, pump completions. After the
    /// shutdown flag is raised the loop stops accepting and reading but
    /// keeps pumping completions and flushing writes until every job handed
    /// to the shards has been answered — no accepted frame is ever silently
    /// dropped.
    pub(crate) fn run(mut self) {
        let mut events = Events::with_capacity(256);
        let timeout = self.shared.config.poll_interval();
        loop {
            let draining = self.shared.shutting_down.load(Ordering::SeqCst);
            if draining && self.outstanding == 0 {
                self.final_flush();
                return;
            }
            if let Err(e) = self.poll.poll(&mut events, Some(timeout)) {
                if !fatal_poll_error(&e) {
                    continue;
                }
                // A persistently failing poller cannot be recovered, and
                // retrying it would busy-spin the loop at poll-interval
                // cadence forever: drain the completion channel directly
                // (blocking — there is no poller left to multiplex with),
                // flush what can be flushed, and exit.
                self.drain_without_poller();
                return;
            }
            let mut touched: Vec<usize> = Vec::new();
            for event in &events {
                match event.token() {
                    Token(LISTENER) => {
                        if !draining {
                            self.accept_all();
                        }
                    }
                    Token(WAKER) => self.waker.drain(),
                    Token(token) => {
                        self.conn_event(token, event.is_readable(), event.is_writable(), draining);
                        touched.push(token);
                    }
                }
            }
            touched.extend(self.pump_completions());
            if !draining {
                self.enforce_deadlines();
            }
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                self.after_io(token);
            }
        }
    }

    /// Sweeps every expired deadline-heap entry: kills connections whose
    /// idle / mid-message deadline truly passed, reaps orphaned sessions
    /// whose linger ran out, and re-schedules entries whose underlying
    /// clock moved (activity since the entry was pushed).
    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        let config = self.shared.config;
        while let Some(&Reverse((at, kind, a, b))) = self.deadlines.peek() {
            if at > now {
                break;
            }
            self.deadlines.pop();
            match kind {
                DL_CONN => {
                    let token = a as usize;
                    let index = token - FIRST_CONN;
                    let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
                        continue;
                    };
                    if conn.id.generation != b {
                        continue;
                    }
                    match conn.effective_deadline(&config) {
                        Some(effective) if effective <= now => {
                            let conn = self.conns[index].take().expect("checked above");
                            self.shared.timed_out.fetch_add(1, Ordering::Relaxed);
                            self.teardown(conn);
                        }
                        Some(effective) => {
                            conn.scheduled_deadline = Some(effective);
                            self.deadlines.push(Reverse((effective, DL_CONN, a, b)));
                        }
                        None => conn.scheduled_deadline = None,
                    }
                }
                _ => {
                    let session = a;
                    let linger = Duration::from_millis(config.session_linger_ms);
                    let Some(entry) = self.sessions.get(&session) else {
                        continue;
                    };
                    // Re-owned since this entry was pushed: drop it; a new
                    // orphaning pushes a fresh entry.
                    let Some(orphaned_at) = entry.orphaned_at.filter(|_| entry.owner.is_none())
                    else {
                        continue;
                    };
                    if orphaned_at + linger <= now {
                        self.sessions.remove(&session);
                        self.shared.sessions_expired.fetch_add(1, Ordering::Relaxed);
                        self.shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
                    } else {
                        // Orphaned again later than this entry anticipated.
                        self.deadlines
                            .push(Reverse((orphaned_at + linger, DL_ORPHAN, session, 0)));
                    }
                }
            }
        }
    }

    /// Ensures a deadline-heap entry exists at (or before) the
    /// connection's effective deadline. O(1) when one already is — the
    /// common case on every read.
    fn arm_deadline(
        deadlines: &mut BinaryHeap<Reverse<DeadlineEntry>>,
        config: &ServerConfig,
        conn: &mut Conn,
    ) {
        if let Some(at) = conn.effective_deadline(config) {
            if conn
                .scheduled_deadline
                .is_none_or(|scheduled| at < scheduled)
            {
                conn.scheduled_deadline = Some(at);
                deadlines.push(Reverse((
                    at,
                    DL_CONN,
                    conn.id.token as u64,
                    conn.id.generation,
                )));
            }
        }
    }

    /// The completion-channel drain used when the poller has died: without
    /// a poller no new bytes can be read, but jobs already handed to the
    /// shards still complete; wait (bounded per job) for each so no
    /// accepted frame is silently dropped, then flush best-effort.
    fn drain_without_poller(&mut self) {
        while self.outstanding > 0 {
            match self.completions.recv_timeout(Duration::from_secs(5)) {
                Ok(completion) => {
                    self.outstanding = self.outstanding.saturating_sub(1);
                    self.apply_completion(completion);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.final_flush();
    }

    /// Accepts until the listener would block. Transient errors (aborted
    /// handshakes) must not kill the server; the next readiness event
    /// retries. At [`ServerConfig::max_connections`] occupancy the server
    /// load-sheds instead of admitting: one typed `overloaded` line goes
    /// out best-effort and the socket is dropped, so a connection flood
    /// can never grow the slab, the poller set, or per-connection buffers.
    fn accept_all(&mut self) {
        let limit = self.shared.config.max_connections.max(1);
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    if self.conns.len() - self.free.len() >= limit {
                        self.shared.shed_connections.fetch_add(1, Ordering::Relaxed);
                        let mut line = overloaded_error(limit).encode();
                        line.push('\n');
                        let _ = stream.write_all(line.as_bytes());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let index = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let token = index + FIRST_CONN;
                    if self
                        .poll
                        .register(&stream, Token(token), Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(index);
                        continue;
                    }
                    self.next_generation += 1;
                    let id = ConnId {
                        token,
                        generation: self.next_generation,
                    };
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .active_connections
                        .fetch_add(1, Ordering::Relaxed);
                    let mut conn = Conn::new(stream, id);
                    Self::arm_deadline(&mut self.deadlines, &self.shared.config, &mut conn);
                    self.conns[index] = Some(conn);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: usize, readable: bool, writable: bool, draining: bool) {
        let index = token - FIRST_CONN;
        let Some(mut conn) = self.conns.get_mut(index).and_then(Option::take) else {
            return;
        };
        let mut alive = true;
        if writable && conn.write_pending().is_err() {
            alive = false;
        }
        if alive && readable && !draining && !conn.closing {
            alive = self.drive_read(&mut conn) == ReadOutcome::Alive;
        }
        if alive {
            Self::arm_deadline(&mut self.deadlines, &self.shared.config, &mut conn);
            self.conns[index] = Some(conn);
        } else {
            self.teardown(conn);
        }
    }

    /// Reads until the socket would block, feeding the parse state machine
    /// after every chunk.
    fn drive_read(&mut self, conn: &mut Conn) -> ReadOutcome {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => return ReadOutcome::Dead,
                Ok(count) => {
                    conn.last_activity = Instant::now();
                    conn.inbuf.extend(&scratch[..count]);
                    if self.parse_messages(conn) == ReadOutcome::Dead {
                        return ReadOutcome::Dead;
                    }
                    if conn.closing {
                        return ReadOutcome::Alive;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return ReadOutcome::Alive,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Dead,
            }
        }
    }

    /// Consumes every complete message currently buffered.
    fn parse_messages(&mut self, conn: &mut Conn) -> ReadOutcome {
        loop {
            if conn.closing {
                return ReadOutcome::Alive;
            }
            match conn.read_state {
                ReadState::Route => {
                    let buffered = conn.inbuf.as_slice();
                    let Some(&first) = buffered.first() else {
                        return ReadOutcome::Alive;
                    };
                    if first == BINARY_FRAME_MAGIC {
                        if buffered.len() < BINARY_HEADER_LEN {
                            return ReadOutcome::Alive;
                        }
                        self.route_binary_header(conn);
                    } else {
                        match buffered.iter().position(|&b| b == b'\n') {
                            Some(position) => {
                                let line = conn.inbuf.take(position + 1);
                                self.handle_line(conn, &line);
                            }
                            None => {
                                // The transport-level analogue of the JSON
                                // parser's nesting-depth cap: a peer that
                                // never sends a newline must not grow server
                                // memory without bound. No response — there
                                // is no parseable request to answer.
                                if buffered.len() > self.shared.config.max_line_bytes {
                                    return ReadOutcome::Dead;
                                }
                                return ReadOutcome::Alive;
                            }
                        }
                    }
                }
                ReadState::BinaryPayload { ref header, needed } => {
                    if conn.inbuf.len() < needed {
                        return ReadOutcome::Alive;
                    }
                    let header = *header;
                    let payload = conn.inbuf.take(needed);
                    conn.read_state = ReadState::Route;
                    let seq = conn.alloc_slot();
                    // Zero-copy ingest: verify the checksum, then hand the
                    // wire bytes to the shard unchanged — dequantization
                    // happens in the worker, straight into the session's
                    // extraction scratch.
                    match header.verified_payload(payload) {
                        Ok(payload) => {
                            self.shared.binary_frames.fetch_add(1, Ordering::Relaxed);
                            if let Some(response) = self.submit_frame(
                                conn,
                                seq,
                                header.session,
                                JobPayload::Encoded(payload),
                            ) {
                                conn.fill(seq, response);
                            }
                        }
                        Err(e) => conn.fill(seq, bad_request(e)),
                    }
                }
                ReadState::BinarySkip { remaining } => {
                    let discard = remaining.min(conn.inbuf.len());
                    conn.inbuf.consume(discard);
                    let remaining = remaining - discard;
                    if remaining > 0 {
                        conn.read_state = ReadState::BinarySkip { remaining };
                        return ReadOutcome::Alive;
                    }
                    conn.read_state = ReadState::Route;
                }
            }
        }
    }

    /// Routes a buffered 36-byte binary header: a valid header either starts
    /// payload accumulation or (for a frame doomed regardless of its
    /// contents — binary framing not negotiated, or an unknown session id)
    /// slots the typed rejection and discards the payload without ever
    /// buffering it for decode. An invalid header is answered and skipped by
    /// its declared length when that is bounded; otherwise the connection is
    /// answered and closed (reading an unbounded payload would defeat the
    /// memory cap, and skipping terabytes is indistinguishable from a hung
    /// connection).
    fn route_binary_header(&mut self, conn: &mut Conn) {
        let mut header_bytes = [0u8; BINARY_HEADER_LEN];
        header_bytes.copy_from_slice(&conn.inbuf.as_slice()[..BINARY_HEADER_LEN]);
        conn.inbuf.consume(BINARY_HEADER_LEN);
        let cap = self.shared.config.max_line_bytes as u64;
        let validated = BinaryFrameHeader::parse(&header_bytes)
            .and_then(|header| header.checked_payload_len(cap).map(|len| (header, len)));
        match validated {
            Ok((header, payload_len)) => {
                let rejection = if !conn.binary_frames {
                    Some(bad_request(
                        "binary framing was not negotiated on this connection \
                         (send the negotiate op first)",
                    ))
                } else if self.owned_state(conn, header.session).is_none() {
                    Some(unknown_session_error(header.session))
                } else {
                    None
                };
                match rejection {
                    Some(response) => {
                        let seq = conn.alloc_slot();
                        conn.fill(seq, response);
                        conn.read_state = ReadState::BinarySkip {
                            remaining: payload_len,
                        };
                    }
                    None => {
                        conn.read_state = ReadState::BinaryPayload {
                            header,
                            needed: payload_len,
                        };
                    }
                }
            }
            Err(e) => {
                let seq = conn.alloc_slot();
                conn.fill(seq, bad_request(e));
                // The declared length sits at a fixed offset whatever else
                // is wrong with the header; use it to resynchronise if it
                // is bounded.
                let declared = wire::declared_payload_len(&header_bytes);
                if declared <= cap {
                    conn.read_state = ReadState::BinarySkip {
                        remaining: declared as usize,
                    };
                } else {
                    conn.closing = true;
                }
            }
        }
    }

    /// Handles one JSON request line (trailing newline included).
    fn handle_line(&mut self, conn: &mut Conn, line: &[u8]) {
        let seq = conn.alloc_slot();
        // Strict UTF-8 at the trust boundary: lossy replacement would
        // silently alter string fields (e.g. a camera name) inside an
        // otherwise well-formed request.
        let request = match std::str::from_utf8(line) {
            Ok(text) => match Request::decode(text.trim_end()) {
                Ok(request) => request,
                Err(e) => {
                    conn.fill(seq, bad_request(e));
                    return;
                }
            },
            Err(e) => {
                conn.fill(
                    seq,
                    bad_request(format_args!("request line is not valid UTF-8: {e}")),
                );
                return;
            }
        };
        if let Some(response) = self.handle_request(conn, seq, request) {
            conn.fill(seq, response);
        }
    }

    /// Executes one decoded request. `Some` is an immediate response for the
    /// allocated slot; `None` means the slot will be filled by a shard
    /// completion.
    fn handle_request(&mut self, conn: &mut Conn, seq: u64, request: Request) -> Option<Response> {
        match request {
            Request::Ping => Some(Response::Pong),
            Request::Negotiate { format, dispersion } => {
                // Binary framing is a per-connection capability switch;
                // control operations and responses stay JSON lines either
                // way. The payload encoding of each binary frame is
                // self-describing, so the server only needs to remember
                // "binary allowed". The dispersion precision applies to
                // every frame submitted after this confirmation, whatever
                // its format.
                conn.binary_frames = matches!(format, FrameFormat::Binary(_));
                conn.dispersion = dispersion;
                Some(Response::Negotiated { format, dispersion })
            }
            Request::Open { model, camera } => {
                if self.shared.shutting_down.load(Ordering::SeqCst) {
                    return Some(shutting_down_error());
                }
                let Some(entry) = self.shared.registry.get(&model) else {
                    return Some(Response::Error {
                        code: ErrorCode::UnknownModel,
                        message: format!("no model named `{model}` is registered"),
                    });
                };
                let engine = entry.open_stream();
                let series_length = engine.series_length();
                let session = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
                self.sessions.insert(
                    session,
                    SessionEntry {
                        state: Arc::new(Mutex::new(Session { engine, camera })),
                        owner: Some(conn.id),
                        orphaned_at: None,
                    },
                );
                conn.sessions.insert(session);
                self.shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
                self.shared.open_sessions.fetch_add(1, Ordering::Relaxed);
                Some(Response::Opened {
                    session,
                    series_length,
                })
            }
            Request::Resume { session } => {
                if self.shared.shutting_down.load(Ordering::SeqCst) {
                    return Some(shutting_down_error());
                }
                let Some(entry) = self.sessions.get_mut(&session) else {
                    return Some(unknown_session_error(session));
                };
                // A session owned by another *live* connection is not up
                // for grabs; only orphaned sessions (and the owner itself,
                // idempotently) can be re-attached.
                if entry.owner.is_some_and(|owner| owner != conn.id) {
                    return Some(unknown_session_error(session));
                }
                entry.owner = Some(conn.id);
                entry.orphaned_at = None;
                let state = Arc::clone(&entry.state);
                conn.sessions.insert(session);
                self.shared.sessions_resumed.fetch_add(1, Ordering::Relaxed);
                // The frames-applied count must be authoritative with
                // respect to any frame of this session still in flight on
                // the shard, so it is answered by the shard worker through
                // the same FIFO rather than inline here.
                let job = Job {
                    session_id: session,
                    session: state,
                    kind: JobKind::Resume,
                    conn: conn.id,
                    seq,
                };
                if self.shard_for(session).submit_control(job) {
                    self.outstanding += 1;
                    None
                } else {
                    Some(shutting_down_error())
                }
            }
            Request::Frame { session, probs } => {
                self.submit_frame(conn, seq, session, JobPayload::Decoded(probs))
            }
            Request::Stats { session } => self.submit_control(conn, seq, session, JobKind::Stats),
            Request::Close { session } => {
                // Evict first so later requests get the honest
                // unknown-session answer even while the final counters are
                // still in flight on the shard.
                match self.owned_state(conn, session) {
                    Some(state) => {
                        conn.sessions.remove(&session);
                        self.sessions.remove(&session);
                        self.shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
                        let shard = self.shard_for(session);
                        let job = Job {
                            session_id: session,
                            session: state,
                            kind: JobKind::Close,
                            conn: conn.id,
                            seq,
                        };
                        if shard.submit_control(job) {
                            self.outstanding += 1;
                            None
                        } else {
                            Some(shutting_down_error())
                        }
                    }
                    None => Some(unknown_session_error(session)),
                }
            }
        }
    }

    /// The session state `conn` may operate on under id `session`: present
    /// only when the session exists *and* this connection owns it. A
    /// session orphaned or owned elsewhere answers as unknown — ownership
    /// is transferred explicitly by `resume`, never implicitly by use.
    fn owned_state(&self, conn: &Conn, session: u64) -> Option<Arc<Mutex<Session>>> {
        self.sessions
            .get(&session)
            .filter(|entry| entry.owner == Some(conn.id))
            .map(|entry| Arc::clone(&entry.state))
    }

    fn shard_for(&self, session: u64) -> &Shard {
        &self.shards[(session % self.shards.len() as u64) as usize]
    }

    /// Submits one frame payload to the session's shard — the shared tail of
    /// the JSON and binary submission paths.
    fn submit_frame(
        &mut self,
        conn: &mut Conn,
        seq: u64,
        session: u64,
        payload: JobPayload,
    ) -> Option<Response> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Some(shutting_down_error());
        }
        let Some(state) = self.owned_state(conn, session) else {
            return Some(unknown_session_error(session));
        };
        // Decoded payloads cross a trust boundary: an inconsistent shape
        // would panic deep inside metric extraction. (The binary path
        // validates shape against byte count before the job is built.)
        if let JobPayload::Decoded(probs) = &payload {
            if !probs.shape_consistent() {
                return Some(Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "frame payload has an inconsistent shape".to_string(),
                });
            }
        }
        let job = Job {
            session_id: session,
            session: state,
            kind: JobKind::Frame {
                payload,
                dispersion: conn.dispersion,
            },
            conn: conn.id,
            seq,
        };
        if self.shard_for(session).submit_frame(job) {
            self.outstanding += 1;
            None
        } else {
            Some(Response::Error {
                code: ErrorCode::Backpressure,
                message: format!(
                    "inference queue is full ({} jobs); retry after backing off",
                    self.shared.config.queue_depth.max(1)
                ),
            })
        }
    }

    /// Submits a `stats`-style control job, answering inline when the
    /// session is unknown.
    fn submit_control(
        &mut self,
        conn: &mut Conn,
        seq: u64,
        session: u64,
        kind: JobKind,
    ) -> Option<Response> {
        let Some(state) = self.owned_state(conn, session) else {
            return Some(unknown_session_error(session));
        };
        let job = Job {
            session_id: session,
            session: state,
            kind,
            conn: conn.id,
            seq,
        };
        if self.shard_for(session).submit_control(job) {
            self.outstanding += 1;
            None
        } else {
            Some(shutting_down_error())
        }
    }

    /// Drains the completion channel into connection response slots,
    /// returning the tokens that received something. Completions for
    /// connections that died in flight (or whose slot was reused — the
    /// generation check) are dropped after the accounting.
    fn pump_completions(&mut self) -> Vec<usize> {
        let mut touched = Vec::new();
        while let Ok(completion) = self.completions.try_recv() {
            self.outstanding = self.outstanding.saturating_sub(1);
            if let Some(token) = self.apply_completion(completion) {
                touched.push(token);
            }
        }
        touched
    }

    /// Slots one completion into its connection (generation-checked) and
    /// applies any eviction it carries to both the connection's session set
    /// and the transport's session table. Returns the touched token, if the
    /// connection is still the one that submitted the job.
    fn apply_completion(&mut self, completion: Completion) -> Option<usize> {
        if let Some(session) = completion.evict {
            if self
                .sessions
                .get(&session)
                .is_some_and(|entry| entry.owner == Some(completion.conn))
            {
                self.sessions.remove(&session);
                self.shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let index = completion.conn.token - FIRST_CONN;
        let conn = self.conns.get_mut(index).and_then(Option::as_mut)?;
        if conn.id != completion.conn {
            return None;
        }
        if let Some(session) = completion.evict {
            conn.sessions.remove(&session);
        }
        conn.fill(completion.seq, completion.response);
        Some(completion.conn.token)
    }

    /// Post-I/O bookkeeping for one connection: move ready responses to the
    /// output buffer, push bytes, settle write interest, and finish a
    /// deferred close once everything has been said.
    fn after_io(&mut self, token: usize) {
        let index = token - FIRST_CONN;
        let Some(mut conn) = self.conns.get_mut(index).and_then(Option::take) else {
            return;
        };
        conn.flush_ready();
        if conn.write_pending().is_err() || conn.finished_closing() {
            self.teardown(conn);
            return;
        }
        // Slow-consumer eviction: a peer that stops reading while responses
        // pile up past the cap loses its connection — the backlog it
        // refuses to drain must not grow server memory without bound.
        let cap = self.shared.config.max_outbuf_bytes;
        if cap > 0 && conn.out_len() > cap {
            self.shared.evicted_slow.fetch_add(1, Ordering::Relaxed);
            self.teardown(conn);
            return;
        }
        // A connection whose in-flight responses just drained re-enters
        // "idle" — make sure an idle deadline is armed for it.
        Self::arm_deadline(&mut self.deadlines, &self.shared.config, &mut conn);
        let want_write = conn.out_len() > 0;
        if want_write != conn.write_interest {
            conn.write_interest = want_write;
            let interest = if want_write {
                Interest::READABLE | Interest::WRITABLE
            } else {
                Interest::READABLE
            };
            let _ = self.poll.reregister(&conn.stream, Token(token), interest);
        }
        self.conns[index] = Some(conn);
    }

    /// Releases a connection: deregister, free the slot (its generation is
    /// retired, so in-flight completions for it are dropped on receipt) and
    /// drop the socket. Sessions the connection owned are *orphaned* — left
    /// in the session table with a linger clock running so a reconnecting
    /// client can `resume` them — unless lingering is disabled, in which
    /// case they are reaped here.
    fn teardown(&mut self, conn: Conn) {
        let _ = self.poll.deregister(&conn.stream);
        self.free.push(conn.id.token - FIRST_CONN);
        self.shared
            .active_connections
            .fetch_sub(1, Ordering::Relaxed);
        let linger_ms = self.shared.config.session_linger_ms;
        let now = Instant::now();
        for session in conn.sessions {
            let Some(entry) = self.sessions.get_mut(&session) else {
                continue;
            };
            if entry.owner != Some(conn.id) {
                continue;
            }
            if linger_ms == 0 {
                self.sessions.remove(&session);
                self.shared.sessions_expired.fetch_add(1, Ordering::Relaxed);
                self.shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
            } else {
                entry.owner = None;
                entry.orphaned_at = Some(now);
                self.deadlines.push(Reverse((
                    now + Duration::from_millis(linger_ms),
                    DL_ORPHAN,
                    session,
                    0,
                )));
            }
        }
    }

    /// One best-effort flush of every connection on the way out: shutdown
    /// has drained all outstanding jobs, so anything still buffered is a
    /// complete response that the peer may be waiting on.
    fn final_flush(&mut self) {
        for slot in &mut self.conns {
            if let Some(conn) = slot.as_mut() {
                conn.flush_ready();
                let _ = conn.write_pending();
            }
        }
    }
}

/// Whether a surfaced poll failure is unrecoverable. The vendored poller
/// already swallows `EINTR` internally (a signal-interrupted wait reports
/// as an empty timeout), so anything that still surfaces here — `EBADF` /
/// `EINVAL` from a broken epoll fd, resource exhaustion — is persistent:
/// the same call will fail the same way on the next iteration, and treating
/// it as transient busy-spins the event loop at poll-interval cadence
/// forever. The `Interrupted` check is defensive belt-and-braces for any
/// future poller that does surface it.
fn fatal_poll_error(e: &io::Error) -> bool {
    e.kind() != ErrorKind::Interrupted
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the poll-error branch: a persistent poller
    /// failure must classify as fatal (drain and exit the loop) — it used
    /// to be retried unconditionally, busy-spinning the transport thread —
    /// while a genuine `EINTR`, should a poller ever surface one, must
    /// stay non-fatal.
    #[test]
    fn persistent_poll_errors_are_fatal_and_eintr_is_not() {
        for kind in [
            ErrorKind::InvalidInput,
            ErrorKind::NotFound,
            ErrorKind::OutOfMemory,
            ErrorKind::Other,
        ] {
            assert!(fatal_poll_error(&io::Error::new(kind, "persistent")));
        }
        assert!(!fatal_poll_error(&io::Error::new(
            ErrorKind::Interrupted,
            "signal"
        )));
    }
}
