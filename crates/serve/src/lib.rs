//! # metaseg-serve
//!
//! An event-loop-based, multi-client inference service over the streaming
//! MetaSeg engine: many camera feeds, many models, one process, memory
//! bounded per session.
//!
//! The crate splits into:
//!
//! * [`ModelRegistry`] — named, cached, pre-validated [`MetaPredictor`]
//!   handles (insert fitted handles in-process, load their JSON or container
//!   checkpoints, and hot-swap new versions under live traffic),
//! * [`Server`] / [`ServerHandle`] — the TCP server: one readiness-driven
//!   event-loop thread multiplexing every connection over nonblocking
//!   sockets (epoll via the vendored poller), plus **sharded** worker
//!   threads — sessions are keyed onto shards by `session_id % workers`, so
//!   per-session frame order is preserved by construction while distinct
//!   sessions run in parallel. Each shard drains **micro-batches** (up to
//!   `batch_max` queued jobs at a time) from its own bounded queue and
//!   rejects overload with a typed `backpressure` error instead of blocking
//!   or buffering unboundedly,
//! * [`Request`] / [`Response`] — the JSON-lines wire protocol,
//! * [`wire`] — the negotiated length-prefixed **binary frame fast path**
//!   for submissions (raw little-endian `f64`/`f32`/quantized-`u16` softmax
//!   payloads behind a fixed checksummed header; see the module docs for
//!   the byte layout),
//! * [`ServeClient`] — a small blocking client for tests, demos and load
//!   generators.
//!
//! [`MetaPredictor`]: metaseg_learners::MetaPredictor
//!
//! ## Wire format
//!
//! One compact JSON object per line; requests carry an `"op"`, success
//! responses an `"ok"`, errors an `"err"` code. The encoding is stable and
//! doc-tested:
//!
//! ```
//! use metaseg_serve::{ErrorCode, Request, Response};
//!
//! // A session-open request renders to one JSON line…
//! let open = Request::Open { model: "default".into(), camera: "cam-0".into() };
//! assert_eq!(
//!     open.encode(),
//!     r#"{"op":"open","model":"default","camera":"cam-0"}"#
//! );
//!
//! // …and the matching response parses back into typed form.
//! let reply = Response::decode(r#"{"ok":"opened","session":1,"series_length":3}"#).unwrap();
//! assert_eq!(reply, Response::Opened { session: 1, series_length: 3 });
//!
//! // Overload is a typed, retryable error — never a dropped connection.
//! let busy = Response::decode(
//!     r#"{"err":"backpressure","message":"inference queue is full (64 jobs)"}"#
//! ).unwrap();
//! assert!(matches!(busy, Response::Error { code: ErrorCode::Backpressure, .. }));
//! ```
//!
//! Frame submissions can additionally switch to the binary fast path, per
//! connection:
//!
//! ```
//! use metaseg::DispersionPrecision;
//! use metaseg_serve::{FrameFormat, Request, Response};
//! use metaseg_data::ProbEncoding;
//!
//! let negotiate = Request::Negotiate {
//!     format: FrameFormat::Binary(ProbEncoding::F64),
//!     dispersion: DispersionPrecision::F64,
//! };
//! assert_eq!(negotiate.encode(), r#"{"op":"negotiate","frames":"binary-f64"}"#);
//! let reply = Response::decode(r#"{"ok":"negotiated","frames":"binary-f64"}"#).unwrap();
//! assert_eq!(
//!     reply,
//!     Response::Negotiated {
//!         format: FrameFormat::Binary(ProbEncoding::F64),
//!         dispersion: DispersionPrecision::F64,
//!     }
//! );
//!
//! // Opting into the f32 dispersion fast path adds one key to the line.
//! let fast = Request::Negotiate {
//!     format: FrameFormat::Binary(ProbEncoding::U16),
//!     dispersion: DispersionPrecision::F32,
//! };
//! assert_eq!(
//!     fast.encode(),
//!     r#"{"op":"negotiate","frames":"binary-u16","dispersion":"f32"}"#
//! );
//! ```
//!
//! After that, each frame travels as a 36-byte header plus the raw
//! little-endian payload (layout doc-tested in [`wire`]); every response —
//! and every other request — stays a JSON line, so the two formats coexist
//! on one connection and pre-binary peers interoperate unchanged.
//!
//! ## Session lifecycle
//!
//! `open` creates a session owning a fresh
//! [`MetaSegStream`](metaseg::stream::MetaSegStream); each `frame`
//! submission runs the single-pass extraction → incremental tracking →
//! windowed inference pipeline and answers with per-segment verdicts
//! (predicted IoU, false-positive probability, track id) for *that* frame;
//! `stats` snapshots the session counters; `close` releases the session.
//!
//! Sessions are keyed by id, **not** by connection. When a connection dies
//! with sessions still open, those sessions are *orphaned* and linger for
//! [`ServerConfig::session_linger_ms`] — a reconnecting client re-attaches
//! with `resume` (see [`ServeClient::resume`]), which answers the
//! authoritative count of frames applied so far, routed through the
//! session's shard queue so it is ordered behind any in-flight frame. A
//! session that is never resumed expires at the end of its linger window,
//! so there is still no server-side session leak when a camera goes away
//! for good (`session_linger_ms: 0` restores strict die-with-connection
//! behaviour).
//!
//! ## Fault tolerance
//!
//! The server assumes clients misbehave: per-connection idle and mid-frame
//! read deadlines (a deadline heap swept each poll tick) reap wedged and
//! slow-loris peers, an accept-time `max_connections` cap sheds overload
//! with a typed [`ErrorCode::Overloaded`] reply, and a bounded
//! per-connection output buffer evicts slow consumers instead of buffering
//! without limit. The client assumes the network misbehaves: socket
//! deadlines by default, jittered exponential backoff on overload, and
//! reconnect-resume on connection faults ([`ClientConfig`],
//! [`ServeClient::submit_with_retry`], [`Submission`]). The whole stack is
//! exercised end to end by the byte-level chaos proxy
//! (`metaseg_sim::ChaosProxy`) in the `chaos` integration tests and the
//! `serve_loadtest --chaos` survival bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod protocol;
mod registry;
mod server;
mod shard;
mod transport;
pub mod wire;

pub use client::{ClientConfig, ClientError, ServeClient, Submission};
pub use protocol::{ErrorCode, FrameFormat, ProtocolError, Request, Response};
pub use registry::{ModelEntry, ModelRegistry};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats, ShardStats};
pub use wire::WireError;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: a small fitted predictor over the simulator.

    use metaseg::stream::StreamConfig;
    use metaseg::timedyn::{MetaModel, TimeDynConfig, TimeDynamic};
    use metaseg_learners::{MetaPredictor, TabularDataset};
    use metaseg_sim::{NetworkProfile, NetworkSim, VideoConfig, VideoScenario};
    use rand::{rngs::StdRng, SeedableRng};

    /// Fits a gradient-boosting predictor on time series of `length` frames
    /// of the small simulated video scenario.
    pub fn fitted_model(length: usize) -> (StreamConfig, MetaPredictor) {
        let mut rng = StdRng::seed_from_u64(900);
        let sim = NetworkSim::new(NetworkProfile::weak());
        let scenario = VideoScenario::generate(&VideoConfig::small(), &sim, &mut rng);
        let pipeline = TimeDynamic::new(TimeDynConfig::default());
        let mut train = TabularDataset::new();
        for sequence in &scenario.dataset().sequences {
            let analysis = pipeline.analyze_sequence(sequence);
            train.extend_from(&pipeline.time_series_dataset(&analysis, length));
        }
        let predictor = pipeline
            .fit_predictor(MetaModel::GradientBoosting, &train, 0)
            .expect("the small scenario is fittable");
        (StreamConfig::default(), predictor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fitted_model;
    use metaseg_sim::{NetworkProfile, NetworkSim, VideoConfig, VideoStream};
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::Arc;

    fn registry_with_default(length: usize) -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        let (config, predictor) = fitted_model(length);
        registry
            .insert("default", config, predictor)
            .expect("fixture model is valid");
        registry
    }

    #[test]
    fn serve_one_camera_end_to_end() {
        let registry = registry_with_default(2);
        let handle = Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
        let addr = handle.local_addr();

        let mut client = ServeClient::connect(addr).unwrap();
        client.ping().unwrap();
        let (session, series_length) = client.open("default", "cam-0").unwrap();
        assert_eq!(series_length, 2);

        let mut rng = StdRng::seed_from_u64(901);
        let sim = NetworkSim::new(NetworkProfile::weak());
        let frames: Vec<_> = VideoStream::open(&VideoConfig::small(), sim, 0, &mut rng)
            .take(4)
            .map(|f| f.prediction)
            .collect();
        for (i, probs) in frames.iter().enumerate() {
            let (frame, verdicts) = client.submit(session, probs).unwrap();
            assert_eq!(frame, i);
            for verdict in &verdicts {
                assert!((0.0..=1.0).contains(&verdict.tp_probability));
                assert!((0.0..=1.0).contains(&verdict.predicted_iou));
            }
        }
        let stats = client.stats(session).unwrap();
        assert_eq!(stats.frames, 4);
        let final_stats = client.close(session).unwrap();
        assert_eq!(final_stats.frames, 4);
        // Closed sessions are gone.
        assert_eq!(
            client.stats(session).unwrap_err().server_code(),
            Some(ErrorCode::UnknownSession)
        );

        let server_stats = handle.shutdown();
        assert_eq!(server_stats.connections, 1);
        assert_eq!(server_stats.sessions_opened, 1);
        assert_eq!(server_stats.frames_processed, 4);
        assert_eq!(server_stats.rejected, 0);
    }

    #[test]
    fn oversized_lines_drop_the_connection_instead_of_growing_memory() {
        use std::io::{Read, Write};
        use std::net::TcpStream;

        let registry = registry_with_default(2);
        let handle = Server::spawn(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                max_line_bytes: 1024,
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        // A newline-free flood larger than the cap: the server must close
        // the connection (without ever answering) rather than buffer the
        // line forever. The write may fail mid-flood when the server
        // closes first; both outcomes are the success case.
        let _ = stream.write_all(&vec![b'x'; 64 * 1024]);
        let _ = stream.flush();
        let mut reply = Vec::new();
        let _ = stream.read_to_end(&mut reply);
        assert!(
            reply.is_empty(),
            "no response expected to an oversized partial line"
        );
        handle.shutdown();
    }

    #[test]
    fn unknown_model_and_malformed_lines_keep_the_connection_alive() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let registry = registry_with_default(2);
        let handle = Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).unwrap();

        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        // A request with invalid UTF-8 inside a JSON string is rejected
        // outright (never lossily altered into a "valid" camera name), and
        // the connection survives for everything below.
        writer
            .write_all(b"{\"op\":\"open\",\"model\":\"default\",\"camera\":\"\xFF\xFE\"}\n")
            .unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        match Response::decode(reply.trim_end()).unwrap() {
            Response::Error {
                code: ErrorCode::BadRequest,
                message,
            } => assert!(message.contains("UTF-8"), "unexpected: {message}"),
            other => panic!("unexpected response {other:?}"),
        }

        let mut roundtrip = |line: &str| -> Response {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            Response::decode(reply.trim_end()).unwrap()
        };

        // A raw garbage line gets a typed bad-request error…
        assert!(matches!(
            roundtrip("this is not json"),
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        // …an unknown model a typed unknown-model error…
        assert!(matches!(
            roundtrip(
                &Request::Open {
                    model: "missing".into(),
                    camera: "cam".into()
                }
                .encode()
            ),
            Response::Error {
                code: ErrorCode::UnknownModel,
                ..
            }
        ));
        // …a frame for a never-opened session a typed unknown-session error…
        assert!(matches!(
            roundtrip(&Request::Stats { session: 99 }.encode()),
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        // …and the same connection still serves real requests afterwards.
        assert!(matches!(
            roundtrip(
                &Request::Open {
                    model: "default".into(),
                    camera: "cam".into()
                }
                .encode()
            ),
            Response::Opened { .. }
        ));
        handle.shutdown();
    }

    #[test]
    fn binary_frames_require_negotiation_and_malformed_ones_keep_the_connection() {
        use crate::wire::encode_binary_frame;
        use metaseg_data::{ProbEncoding, ProbMap};
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let registry = registry_with_default(2);
        let handle = Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).unwrap();

        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let read_reply = |reader: &mut BufReader<TcpStream>| -> Response {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            Response::decode(reply.trim_end()).unwrap()
        };
        let probs = ProbMap::uniform(6, 4, 3);
        let frame = encode_binary_frame(1, &probs, ProbEncoding::F64);

        // A binary frame before negotiation is a typed error, not a
        // dropped connection (the header's length field lets the server
        // skip the payload and resynchronise).
        writer.write_all(&frame).unwrap();
        writer.flush().unwrap();
        let reply = read_reply(&mut reader);
        assert!(matches!(
            reply,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));

        // Negotiate binary framing, open a session — both JSON lines.
        writeln!(
            writer,
            "{}",
            Request::Negotiate {
                format: FrameFormat::Binary(ProbEncoding::F64),
                dispersion: metaseg::DispersionPrecision::F64
            }
            .encode()
        )
        .unwrap();
        assert!(matches!(
            read_reply(&mut reader),
            Response::Negotiated {
                format: FrameFormat::Binary(ProbEncoding::F64),
                ..
            }
        ));
        writeln!(
            writer,
            "{}",
            Request::Open {
                model: "default".into(),
                camera: "cam".into()
            }
            .encode()
        )
        .unwrap();
        let Response::Opened { session, .. } = read_reply(&mut reader) else {
            panic!("open must succeed");
        };

        // A corrupt payload (checksum mismatch) is a typed error and the
        // connection survives…
        let mut corrupt = encode_binary_frame(session, &probs, ProbEncoding::F64);
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        writer.write_all(&corrupt).unwrap();
        writer.flush().unwrap();
        match read_reply(&mut reader) {
            Response::Error {
                code: ErrorCode::BadRequest,
                message,
            } => assert!(message.contains("checksum"), "unexpected: {message}"),
            other => panic!("unexpected response {other:?}"),
        }

        // …as is a header that lies about its dimensions…
        let mut lying = encode_binary_frame(session, &probs, ProbEncoding::F64);
        lying[12..16].copy_from_slice(&77u32.to_le_bytes());
        writer.write_all(&lying).unwrap();
        writer.flush().unwrap();
        match read_reply(&mut reader) {
            Response::Error {
                code: ErrorCode::BadRequest,
                message,
            } => assert!(message.contains("shape requires"), "unexpected: {message}"),
            other => panic!("unexpected response {other:?}"),
        }

        // …and a binary frame for a session that was never opened.
        let unknown = encode_binary_frame(9999, &probs, ProbEncoding::F64);
        writer.write_all(&unknown).unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_reply(&mut reader),
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));

        // The same connection still processes a valid binary frame.
        let valid = encode_binary_frame(session, &probs, ProbEncoding::F64);
        writer.write_all(&valid).unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_reply(&mut reader),
            Response::Verdicts { frame: 0, .. }
        ));

        let stats = handle.shutdown();
        assert_eq!(stats.frames_processed, 1);
        // Arrival counter: only the valid frame counts — pre-negotiation,
        // unknown-session and malformed frames are all rejected before
        // their payload is ever decoded.
        assert_eq!(stats.binary_frames, 1);
    }

    #[test]
    fn negotiated_client_submits_binary_frames_with_identical_verdicts() {
        use metaseg_data::ProbEncoding;

        let registry = registry_with_default(2);
        let handle = Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
        let addr = handle.local_addr();

        let mut rng = StdRng::seed_from_u64(902);
        let sim = NetworkSim::new(NetworkProfile::weak());
        let frames: Vec<_> = VideoStream::open(&VideoConfig::small(), sim, 0, &mut rng)
            .take(3)
            .map(|f| f.prediction)
            .collect();

        let submit_all = |format: Option<FrameFormat>| {
            let mut client = ServeClient::connect(addr).unwrap();
            if let Some(format) = format {
                client.negotiate(format).unwrap();
                assert_eq!(client.frame_format(), format);
            }
            let (session, _) = client.open("default", "cam").unwrap();
            let verdicts: Vec<_> = frames
                .iter()
                .map(|probs| client.submit(session, probs).unwrap())
                .collect();
            client.close(session).unwrap();
            verdicts
        };

        let json = submit_all(None);
        let binary = submit_all(Some(FrameFormat::Binary(ProbEncoding::F64)));
        // The lossless binary path yields bit-identical verdicts.
        assert_eq!(json, binary);

        let stats = handle.shutdown();
        assert_eq!(stats.frames_processed, 6);
        assert_eq!(stats.binary_frames, 3);
    }
}
