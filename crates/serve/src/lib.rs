//! # metaseg-serve
//!
//! A thread-pool-based, multi-client inference service over the streaming
//! MetaSeg engine: many camera feeds, many models, one process, memory
//! bounded per session.
//!
//! The crate splits into:
//!
//! * [`ModelRegistry`] — named, cached, pre-validated [`MetaPredictor`]
//!   handles (insert fitted handles in-process or load their JSON
//!   checkpoints),
//! * [`Server`] / [`ServerHandle`] — the TCP server: a non-blocking
//!   acceptor, one thread per connection owning that connection's camera
//!   sessions, and a bounded worker pool that rejects overload with a typed
//!   `backpressure` error instead of blocking or buffering unboundedly,
//! * [`Request`] / [`Response`] — the JSON-lines wire protocol,
//! * [`ServeClient`] — a small blocking client for tests, demos and load
//!   generators.
//!
//! [`MetaPredictor`]: metaseg_learners::MetaPredictor
//!
//! ## Wire format
//!
//! One compact JSON object per line; requests carry an `"op"`, success
//! responses an `"ok"`, errors an `"err"` code. The encoding is stable and
//! doc-tested:
//!
//! ```
//! use metaseg_serve::{ErrorCode, Request, Response};
//!
//! // A session-open request renders to one JSON line…
//! let open = Request::Open { model: "default".into(), camera: "cam-0".into() };
//! assert_eq!(
//!     open.encode(),
//!     r#"{"op":"open","model":"default","camera":"cam-0"}"#
//! );
//!
//! // …and the matching response parses back into typed form.
//! let reply = Response::decode(r#"{"ok":"opened","session":1,"series_length":3}"#).unwrap();
//! assert_eq!(reply, Response::Opened { session: 1, series_length: 3 });
//!
//! // Overload is a typed, retryable error — never a dropped connection.
//! let busy = Response::decode(
//!     r#"{"err":"backpressure","message":"inference queue is full (64 jobs)"}"#
//! ).unwrap();
//! assert!(matches!(busy, Response::Error { code: ErrorCode::Backpressure, .. }));
//! ```
//!
//! ## Session lifecycle
//!
//! `open` creates a per-connection session owning a fresh
//! [`MetaSegStream`](metaseg::stream::MetaSegStream); each `frame`
//! submission runs the single-pass extraction → incremental tracking →
//! windowed inference pipeline and answers with per-segment verdicts
//! (predicted IoU, false-positive probability, track id) for *that* frame;
//! `stats` snapshots the session counters; `close` (or disconnecting)
//! releases the session. Sessions die with their connection — there is no
//! server-side session leak when a camera goes away.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod protocol;
mod registry;
mod server;

pub use client::{ClientError, ServeClient};
pub use protocol::{ErrorCode, ProtocolError, Request, Response};
pub use registry::{ModelEntry, ModelRegistry};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: a small fitted predictor over the simulator.

    use metaseg::stream::StreamConfig;
    use metaseg::timedyn::{MetaModel, TimeDynConfig, TimeDynamic};
    use metaseg_learners::{MetaPredictor, TabularDataset};
    use metaseg_sim::{NetworkProfile, NetworkSim, VideoConfig, VideoScenario};
    use rand::{rngs::StdRng, SeedableRng};

    /// Fits a gradient-boosting predictor on time series of `length` frames
    /// of the small simulated video scenario.
    pub fn fitted_model(length: usize) -> (StreamConfig, MetaPredictor) {
        let mut rng = StdRng::seed_from_u64(900);
        let sim = NetworkSim::new(NetworkProfile::weak());
        let scenario = VideoScenario::generate(&VideoConfig::small(), &sim, &mut rng);
        let pipeline = TimeDynamic::new(TimeDynConfig::default());
        let mut train = TabularDataset::new();
        for sequence in &scenario.dataset().sequences {
            let analysis = pipeline.analyze_sequence(sequence);
            train.extend_from(&pipeline.time_series_dataset(&analysis, length));
        }
        let predictor = pipeline
            .fit_predictor(MetaModel::GradientBoosting, &train, 0)
            .expect("the small scenario is fittable");
        (StreamConfig::default(), predictor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fitted_model;
    use metaseg_sim::{NetworkProfile, NetworkSim, VideoConfig, VideoStream};
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::Arc;

    fn registry_with_default(length: usize) -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        let (config, predictor) = fitted_model(length);
        registry
            .insert("default", config, predictor)
            .expect("fixture model is valid");
        registry
    }

    #[test]
    fn serve_one_camera_end_to_end() {
        let registry = registry_with_default(2);
        let handle = Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
        let addr = handle.local_addr();

        let mut client = ServeClient::connect(addr).unwrap();
        client.ping().unwrap();
        let (session, series_length) = client.open("default", "cam-0").unwrap();
        assert_eq!(series_length, 2);

        let mut rng = StdRng::seed_from_u64(901);
        let sim = NetworkSim::new(NetworkProfile::weak());
        let frames: Vec<_> = VideoStream::open(&VideoConfig::small(), sim, 0, &mut rng)
            .take(4)
            .map(|f| f.prediction)
            .collect();
        for (i, probs) in frames.iter().enumerate() {
            let (frame, verdicts) = client.submit(session, probs).unwrap();
            assert_eq!(frame, i);
            for verdict in &verdicts {
                assert!((0.0..=1.0).contains(&verdict.tp_probability));
                assert!((0.0..=1.0).contains(&verdict.predicted_iou));
            }
        }
        let stats = client.stats(session).unwrap();
        assert_eq!(stats.frames, 4);
        let final_stats = client.close(session).unwrap();
        assert_eq!(final_stats.frames, 4);
        // Closed sessions are gone.
        assert_eq!(
            client.stats(session).unwrap_err().server_code(),
            Some(ErrorCode::UnknownSession)
        );

        let server_stats = handle.shutdown();
        assert_eq!(server_stats.connections, 1);
        assert_eq!(server_stats.sessions_opened, 1);
        assert_eq!(server_stats.frames_processed, 4);
        assert_eq!(server_stats.rejected, 0);
    }

    #[test]
    fn oversized_lines_drop_the_connection_instead_of_growing_memory() {
        use std::io::{Read, Write};
        use std::net::TcpStream;

        let registry = registry_with_default(2);
        let handle = Server::spawn(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                max_line_bytes: 1024,
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        // A newline-free flood larger than the cap: the server must close
        // the connection (without ever answering) rather than buffer the
        // line forever. The write may fail mid-flood when the server
        // closes first; both outcomes are the success case.
        let _ = stream.write_all(&vec![b'x'; 64 * 1024]);
        let _ = stream.flush();
        let mut reply = Vec::new();
        let _ = stream.read_to_end(&mut reply);
        assert!(
            reply.is_empty(),
            "no response expected to an oversized partial line"
        );
        handle.shutdown();
    }

    #[test]
    fn unknown_model_and_malformed_lines_keep_the_connection_alive() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let registry = registry_with_default(2);
        let handle = Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).unwrap();

        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut roundtrip = |line: &str| -> Response {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            Response::decode(reply.trim_end()).unwrap()
        };

        // A raw garbage line gets a typed bad-request error…
        assert!(matches!(
            roundtrip("this is not json"),
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        // …an unknown model a typed unknown-model error…
        assert!(matches!(
            roundtrip(
                &Request::Open {
                    model: "missing".into(),
                    camera: "cam".into()
                }
                .encode()
            ),
            Response::Error {
                code: ErrorCode::UnknownModel,
                ..
            }
        ));
        // …a frame for a never-opened session a typed unknown-session error…
        assert!(matches!(
            roundtrip(&Request::Stats { session: 99 }.encode()),
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        // …and the same connection still serves real requests afterwards.
        assert!(matches!(
            roundtrip(
                &Request::Open {
                    model: "default".into(),
                    camera: "cam".into()
                }
                .encode()
            ),
            Response::Opened { .. }
        ));
        handle.shutdown();
    }
}
