//! Named, cached model handles for the serving layer.
//!
//! A server process serves many tenants, each pinned to a model by name.
//! [`ModelRegistry`] owns the fitted [`MetaPredictor`] handles (inserted
//! in-process or loaded from a serialized checkpoint — binary container or
//! JSON, sniffed by magic), caches
//! them behind [`Arc`]s so concurrent sessions share one copy, and validates
//! every handle against its [`StreamConfig`] **once at registration** — a
//! session open can then never fail on a config/predictor mismatch.

use metaseg::stream::{MetaSegStream, StreamConfig};
use metaseg::MetaSegError;
use metaseg_learners::MetaPredictor;
use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

/// One registered model: the stream configuration plus the fitted predictor
/// every session of this model is served with.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    name: String,
    config: StreamConfig,
    predictor: MetaPredictor,
    version: u64,
}

impl ModelEntry {
    /// Registry name of the model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonic version of this entry under its name: `1` for the first
    /// registration, bumped by every [`ModelRegistry::swap`] /
    /// [`ModelRegistry::swap_checkpoint`] (and every replacing
    /// [`ModelRegistry::insert`]). Sessions pin the entry they were opened
    /// with, so a session's engine version never changes mid-stream.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stream configuration sessions of this model run under.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The fitted predictor handle.
    pub fn predictor(&self) -> &MetaPredictor {
        &self.predictor
    }

    /// Opens a fresh per-session streaming engine over this model.
    pub fn open_stream(&self) -> MetaSegStream {
        MetaSegStream::new(self.config, self.predictor.clone())
            .expect("entry was validated at registration")
    }
}

/// Thread-safe name → model map shared by every connection of a server.
///
/// Lock poisoning is recovered from rather than propagated: a thread that
/// panicked mid-registration must not turn every later lookup (and thus
/// every session open on the server) into a panic cascade.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a model under `name`, validating the
    /// predictor against the stream configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MetaSegError::InvalidConfig`] when the predictor does not
    /// fit the configuration (wrong feature dimensionality, window too
    /// shallow, mismatched connectivities).
    pub fn insert(
        &self,
        name: &str,
        config: StreamConfig,
        predictor: MetaPredictor,
    ) -> Result<(), MetaSegError> {
        self.swap(name, config, predictor).map(|_| ())
    }

    /// Hot-swaps the model under `name`: validates the predictor, then
    /// replaces the registered entry **unconditionally**, returning the new
    /// version (`1` for a first registration, previous + 1 for a
    /// replacement — read under the same write lock, so concurrent swaps
    /// never produce duplicate versions).
    ///
    /// Sessions already open keep serving with the entry they pinned at
    /// open — a swap never drops or alters a live session; only sessions
    /// opened afterwards see the new version. That is exactly the rolling
    /// model-upgrade semantics a camera fleet needs: drain old sessions at
    /// their own pace while new ones come up on the new checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`MetaSegError::InvalidConfig`] when the predictor does not
    /// fit the configuration; the registered entry is left untouched.
    pub fn swap(
        &self,
        name: &str,
        config: StreamConfig,
        predictor: MetaPredictor,
    ) -> Result<u64, MetaSegError> {
        // Validation = constructing a throwaway engine; registration is cold
        // path, sessions are hot path. Validate before taking the lock so a
        // rejected swap never blocks readers.
        MetaSegStream::new(config, predictor.clone())?;
        let mut models = self.models.write().unwrap_or_else(PoisonError::into_inner);
        let version = models.get(name).map_or(1, |entry| entry.version + 1);
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            config,
            predictor,
            version,
        });
        models.insert(name.to_string(), entry);
        Ok(version)
    }

    /// Hot-reloads a checkpoint under `name`: decodes either checkpoint form
    /// — binary container or UTF-8 JSON, sniffed by magic — and swaps it in
    /// unconditionally (no already-registered short-circuit: reload means
    /// *replace*). Returns the new version.
    ///
    /// # Errors
    ///
    /// Returns [`MetaSegError::Learn`] when the checkpoint is truncated,
    /// corrupt or undecodable in both formats, and
    /// [`MetaSegError::InvalidConfig`] when the decoded predictor does not
    /// fit the configuration; the registered entry is left untouched either
    /// way.
    pub fn swap_checkpoint(
        &self,
        name: &str,
        config: StreamConfig,
        checkpoint: &[u8],
    ) -> Result<u64, MetaSegError> {
        let predictor = MetaPredictor::from_checkpoint_bytes(checkpoint)?;
        self.swap(name, config, predictor)
    }

    /// Loads a model from its serialized JSON checkpoint form
    /// ([`MetaPredictor::to_json`]) and caches it under `name`. If the name
    /// is already registered, the existing handle is kept and the checkpoint
    /// is not parsed again.
    ///
    /// # Errors
    ///
    /// Returns [`MetaSegError::Learn`] when the checkpoint cannot be
    /// decoded, and [`MetaSegError::InvalidConfig`] when the decoded
    /// predictor does not fit the configuration.
    pub fn load_json(
        &self,
        name: &str,
        config: StreamConfig,
        checkpoint: &str,
    ) -> Result<(), MetaSegError> {
        if self.get(name).is_some() {
            return Ok(());
        }
        let predictor = MetaPredictor::from_json(checkpoint)?;
        self.insert(name, config, predictor)
    }

    /// Loads a model from either checkpoint form — a binary checkpoint
    /// container (`metaseg_data::container`) or UTF-8 JSON — sniffing the
    /// container magic ([`MetaPredictor::from_checkpoint_bytes`]), and caches
    /// it under `name` with the same already-registered short-circuit as
    /// [`Self::load_json`].
    ///
    /// # Errors
    ///
    /// Returns [`MetaSegError::Learn`] when the checkpoint is truncated,
    /// corrupt or undecodable in both formats, and
    /// [`MetaSegError::InvalidConfig`] when the decoded predictor does not
    /// fit the configuration.
    pub fn load_checkpoint(
        &self,
        name: &str,
        config: StreamConfig,
        checkpoint: &[u8],
    ) -> Result<(), MetaSegError> {
        if self.get(name).is_some() {
            return Ok(());
        }
        let predictor = MetaPredictor::from_checkpoint_bytes(checkpoint)?;
        self.insert(name, config, predictor)
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Removes a model by name; existing sessions keep their handle alive
    /// through the [`Arc`].
    pub fn remove(&self, name: &str) -> bool {
        self.models
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name)
            .is_some()
    }

    /// Names of all registered models, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the registry holds no models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fitted_model;

    #[test]
    fn insert_validates_and_caches() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        let (config, predictor) = fitted_model(2);
        registry
            .insert("default", config, predictor.clone())
            .unwrap();
        assert_eq!(registry.names(), vec!["default".to_string()]);
        let entry = registry.get("default").unwrap();
        assert_eq!(entry.name(), "default");
        assert_eq!(entry.open_stream().series_length(), 2);
        assert!(registry.get("missing").is_none());

        // A predictor deeper than the stream window is rejected.
        let narrow = StreamConfig {
            window: 1,
            ..config
        };
        assert!(registry.insert("bad", narrow, predictor).is_err());
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn load_checkpoint_sniffs_containers_and_json() {
        let registry = ModelRegistry::new();
        let (config, predictor) = fitted_model(2);
        // Binary container checkpoint.
        let container = predictor.to_container_bytes();
        registry.load_checkpoint("bin", config, &container).unwrap();
        assert_eq!(registry.get("bin").unwrap().predictor(), &predictor);
        // Plain JSON bytes route through the fallback path.
        registry
            .load_checkpoint("json", config, predictor.to_json().as_bytes())
            .unwrap();
        assert_eq!(
            registry.get("json").unwrap().predictor(),
            registry.get("bin").unwrap().predictor()
        );
        // A corrupt container is a typed error, not a panic.
        let mut corrupt = container.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(registry.load_checkpoint("bad", config, &corrupt).is_err());
        // Truncation never panics either.
        assert!(registry
            .load_checkpoint("bad", config, &container[..container.len() / 2])
            .is_err());
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn swap_bumps_versions_without_touching_pinned_entries() {
        let registry = ModelRegistry::new();
        let (config, predictor) = fitted_model(2);
        registry
            .insert("default", config, predictor.clone())
            .unwrap();
        let pinned = registry.get("default").unwrap();
        assert_eq!(pinned.version(), 1);

        // A hot swap replaces the entry unconditionally and bumps the
        // version…
        let (config_v2, predictor_v2) = fitted_model(3);
        assert_eq!(
            registry.swap("default", config_v2, predictor_v2).unwrap(),
            2
        );
        let current = registry.get("default").unwrap();
        assert_eq!(current.version(), 2);
        assert_eq!(current.open_stream().series_length(), 3);
        // …while the pinned handle (what a live session holds) is untouched.
        assert_eq!(pinned.version(), 1);
        assert_eq!(pinned.open_stream().series_length(), 2);

        // Checkpoint reload is also a replace, not a cache hit — unlike
        // `load_checkpoint`, which short-circuits on a registered name.
        let checkpoint = predictor.to_container_bytes();
        assert_eq!(
            registry
                .swap_checkpoint("default", config, &checkpoint)
                .unwrap(),
            3
        );
        assert_eq!(registry.get("default").unwrap().version(), 3);
        registry
            .load_checkpoint("default", config, b"garbage")
            .unwrap();
        assert_eq!(registry.get("default").unwrap().version(), 3);

        // A rejected swap (predictor deeper than the window) leaves the
        // registered entry untouched.
        let narrow = StreamConfig {
            window: 1,
            ..config
        };
        assert!(registry.swap("default", narrow, predictor).is_err());
        assert_eq!(registry.get("default").unwrap().version(), 3);

        // First registration under a fresh name starts at version 1 again.
        let (config_b, predictor_b) = fitted_model(2);
        assert_eq!(registry.swap("other", config_b, predictor_b).unwrap(), 1);
    }

    #[test]
    fn load_json_roundtrips_and_caches_by_name() {
        let registry = ModelRegistry::new();
        let (config, predictor) = fitted_model(2);
        let checkpoint = predictor.to_json();
        registry.load_json("ckpt", config, &checkpoint).unwrap();
        assert_eq!(registry.get("ckpt").unwrap().predictor(), &predictor);
        // Second load under the same name is a cache hit even with a
        // corrupt checkpoint text.
        registry.load_json("ckpt", config, "garbage").unwrap();
        // A fresh name with a corrupt checkpoint is a typed error.
        assert!(registry.load_json("other", config, "garbage").is_err());
        assert!(registry.remove("ckpt"));
        assert!(!registry.remove("ckpt"));
    }
}
