//! The sharded inference worker pool.
//!
//! Sessions are keyed onto shards by `session_id % shards`: every frame of
//! one session lands in the same shard's FIFO queue and is drained by that
//! shard's single worker thread, so per-session frame order is preserved *by
//! construction* — no cross-worker ordering protocol, and no global
//! `Mutex<Receiver<Job>>` for every worker to contend on. Distinct sessions
//! hash to distinct shards and run genuinely in parallel.
//!
//! Each shard owns a bounded queue (`Mutex<VecDeque<Job>>` + condvar) whose
//! depth accounting lives **under the same lock as the queue itself**: a
//! frame is counted, and the peak recorded, only after it has actually been
//! admitted. The previous transport recorded the incremented depth *before*
//! `try_send`, so backpressure-rejected submissions inflated
//! `peak_queue_depth`; that overcount is structurally impossible here.
//!
//! Control operations (`stats`, `close`) travel through the same shard queue
//! as the session's frames — never counted against the frame depth, never
//! rejected with backpressure — so a `stats` pipelined behind a frame always
//! observes that frame, exactly as when connection threads blocked per
//! request.

use crate::protocol::Response;
use crate::server::{bad_request, session_poisoned_error, ServerConfig, ShardStats};
use metaseg::stream::MetaSegStream;
use metaseg::DispersionPrecision;
use metaseg_data::{Frame, FrameId, ProbMap, ProbPayload};
use mio::Waker;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// One camera session: the engine plus bookkeeping labels.
pub(crate) struct Session {
    pub(crate) engine: MetaSegStream,
    #[allow(dead_code)]
    pub(crate) camera: String,
}

/// Identifies one connection slot of the event loop across its lifetime.
///
/// Slots are reused after a disconnect; the generation counter makes a stale
/// completion (for a connection that died while its job was in flight)
/// harmlessly miss instead of answering whoever inherited the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConnId {
    /// The poll token value of the slot.
    pub(crate) token: usize,
    /// Monotonic per-accept generation.
    pub(crate) generation: u64,
}

/// A finished job travelling back to the event loop.
pub(crate) struct Completion {
    pub(crate) conn: ConnId,
    /// Response-slot sequence number on the connection (allocated at submit).
    pub(crate) seq: u64,
    pub(crate) response: Response,
    /// A session the event loop should evict from the connection's map
    /// (a `stats` request that found the session dead).
    pub(crate) evict: Option<u64>,
}

/// How a queued frame travels to the worker that will serve it.
pub(crate) enum JobPayload {
    /// A softmax field decoded at the event loop (the JSON path — the
    /// document decoder produces an owned [`ProbMap`] anyway).
    Decoded(ProbMap),
    /// Checksum-verified wire bytes, untouched since the socket read. The
    /// worker dequantizes them directly into the session engine's extraction
    /// scratch — no intermediate `ProbMap` is ever materialised.
    Encoded(ProbPayload),
}

/// What a queued job asks of the session.
pub(crate) enum JobKind {
    /// Push one frame through the engine and answer its verdicts.
    Frame {
        payload: JobPayload,
        dispersion: DispersionPrecision,
    },
    /// Snapshot the session counters.
    Stats,
    /// Answer how many frames the engine has applied. Routed through the
    /// shard FIFO like any other job, so the count is ordered *behind* any
    /// in-flight frame of the session — a reconnecting client can trust it
    /// as the exact resume point and never double-applies a frame whose
    /// response was lost on the dead connection.
    Resume,
    /// Final counters of a session the event loop already evicted.
    Close,
}

impl JobKind {
    fn is_frame(&self) -> bool {
        matches!(self, JobKind::Frame { .. })
    }

    fn is_stats(&self) -> bool {
        matches!(self, JobKind::Stats)
    }
}

/// A queued job: one operation on one session, plus the response slot of the
/// submitting connection.
pub(crate) struct Job {
    pub(crate) session_id: u64,
    pub(crate) session: Arc<Mutex<Session>>,
    pub(crate) kind: JobKind,
    pub(crate) conn: ConnId,
    pub(crate) seq: u64,
}

/// Queue state of one shard; every field mutates under the one mutex, so
/// depth, peak and rejection counts can never disagree with the queue.
struct ShardQueue {
    jobs: VecDeque<Job>,
    /// Frame jobs currently queued (control jobs are not counted against
    /// the bounded depth).
    frames_queued: usize,
    closed: bool,
    stats: ShardStats,
}

/// One shard: a bounded FIFO of jobs for the sessions keyed onto it, drained
/// by a single dedicated worker thread.
pub(crate) struct Shard {
    queue_depth: usize,
    batch_max: usize,
    synthetic_delay_ms: u64,
    inner: Mutex<ShardQueue>,
    available: Condvar,
}

impl Shard {
    pub(crate) fn new(index: usize, config: &ServerConfig) -> Shard {
        Shard {
            queue_depth: config.queue_depth.max(1),
            batch_max: config.batch_max.max(1),
            synthetic_delay_ms: config.synthetic_delay_ms,
            inner: Mutex::new(ShardQueue {
                jobs: VecDeque::new(),
                frames_queued: 0,
                closed: false,
                stats: ShardStats {
                    shard: index,
                    ..ShardStats::default()
                },
            }),
            available: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardQueue> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a frame job unless the shard's frame queue is full. The depth
    /// check, the admission and the peak update happen under one lock, so
    /// the peak only ever reflects frames that were actually queued — a
    /// rejected submission leaves every gauge untouched except `rejected`.
    pub(crate) fn submit_frame(&self, job: Job) -> bool {
        {
            let mut queue = self.lock();
            if queue.closed {
                return false;
            }
            if queue.frames_queued >= self.queue_depth {
                queue.stats.rejected += 1;
                return false;
            }
            queue.frames_queued += 1;
            queue.stats.peak_queue_depth = queue.stats.peak_queue_depth.max(queue.frames_queued);
            queue.jobs.push_back(job);
        }
        self.available.notify_one();
        true
    }

    /// Admits a control job (`stats` / `close`). Control operations answer
    /// fast and must never be lost to backpressure, so they bypass the
    /// bounded frame depth; they still travel the FIFO, which is what keeps
    /// them ordered after the frames they were pipelined behind.
    pub(crate) fn submit_control(&self, job: Job) -> bool {
        {
            let mut queue = self.lock();
            if queue.closed {
                return false;
            }
            queue.jobs.push_back(job);
        }
        self.available.notify_one();
        true
    }

    /// Marks the shard closed; the worker drains what is queued, then exits.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Snapshot of this shard's counters.
    pub(crate) fn snapshot(&self) -> ShardStats {
        self.lock().stats
    }

    fn record_processed(&self, frames: usize) {
        if frames > 0 {
            self.lock().stats.frames_processed += frames;
        }
    }

    /// Blocks for the next micro-batch: up to `batch_max` queued jobs, in
    /// FIFO order. Returns `None` once the shard is closed and drained.
    fn next_batch(&self) -> Option<Vec<Job>> {
        let mut queue = self.lock();
        loop {
            if !queue.jobs.is_empty() {
                let take = queue.jobs.len().min(self.batch_max);
                let batch: Vec<Job> = queue.jobs.drain(..take).collect();
                let frames = batch.iter().filter(|job| job.kind.is_frame()).count();
                queue.frames_queued -= frames;
                if frames > 0 {
                    queue.stats.batches += 1;
                    queue.stats.peak_batch = queue.stats.peak_batch.max(frames);
                }
                return Some(batch);
            }
            if queue.closed {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One session's slice of a drained micro-batch: its jobs, in arrival order.
struct SessionGroup {
    session_id: u64,
    session: Arc<Mutex<Session>>,
    jobs: Vec<Job>,
}

/// The shard worker: drain a micro-batch, group it by session (preserving
/// arrival order within each group), process the groups, post completions
/// and wake the event loop. Runs until the shard is closed and drained.
pub(crate) fn worker_loop(shard: &Shard, completions: &Sender<Completion>, waker: &Waker) {
    while let Some(batch) = shard.next_batch() {
        let mut groups: Vec<SessionGroup> = Vec::new();
        for job in batch {
            match groups
                .iter_mut()
                .find(|group| group.session_id == job.session_id)
            {
                Some(group) => group.jobs.push(job),
                None => groups.push(SessionGroup {
                    session_id: job.session_id,
                    session: Arc::clone(&job.session),
                    jobs: vec![job],
                }),
            }
        }
        for group in groups {
            process_group(shard, group, completions);
        }
        // One wake per batch: the waker coalesces anyway, and the event
        // loop drains the whole completion channel on each wakeup.
        waker.wake();
    }
}

/// Processes one session group behind a panic fence: a panic mid-inference
/// (which poisons the session mutex) answers every job of the group with the
/// typed poisoned-session error instead of killing the shard worker — the
/// shard keeps serving its other sessions, and the camera recovers by
/// opening a fresh session.
fn process_group(shard: &Shard, group: SessionGroup, completions: &Sender<Completion>) {
    let SessionGroup {
        session_id,
        session,
        jobs,
    } = group;
    let meta: Vec<(ConnId, u64, bool)> = jobs
        .iter()
        .map(|job| (job.conn, job.seq, job.kind.is_stats()))
        .collect();
    let delay_ms = shard.synthetic_delay_ms;
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        run_group(session_id, &session, jobs, delay_ms)
    }));
    let (results, processed) = outcome.unwrap_or_else(|_| {
        let results = meta
            .iter()
            .map(|&(conn, seq, is_stats)| Completion {
                conn,
                seq,
                response: session_poisoned_error(session_id),
                evict: is_stats.then_some(session_id),
            })
            .collect();
        (results, 0)
    });
    shard.record_processed(processed);
    for completion in results {
        // The event loop may already be gone during teardown; dropping the
        // completion is then the right thing.
        let _ = completions.send(completion);
    }
}

/// Locks the session once and pushes the group's jobs through it in arrival
/// order. Returns the completions plus the number of frames processed.
fn run_group(
    session_id: u64,
    session: &Arc<Mutex<Session>>,
    jobs: Vec<Job>,
    delay_ms: u64,
) -> (Vec<Completion>, usize) {
    let Ok(mut guard) = session.lock() else {
        // A previous frame of this session panicked mid-inference: the
        // engine state is unknown, so refuse to serve it rather than risk
        // silently-wrong verdicts.
        let results = jobs
            .iter()
            .map(|job| Completion {
                conn: job.conn,
                seq: job.seq,
                response: session_poisoned_error(session_id),
                evict: job.kind.is_stats().then_some(session_id),
            })
            .collect();
        return (results, 0);
    };
    let frames = jobs.iter().filter(|job| job.kind.is_frame()).count();
    if delay_ms > 0 && frames > 0 {
        // The synthetic delay models *per-frame* model cost, so a group of
        // n frames sleeps n times the configured delay — identical to the
        // unbatched schedule; batching only parallelises across sessions.
        thread::sleep(Duration::from_millis(delay_ms * frames as u64));
    }
    let mut processed = 0usize;
    let mut results = Vec::with_capacity(jobs.len());
    for job in jobs {
        let response = match job.kind {
            JobKind::Frame {
                payload,
                dispersion,
            } => match payload {
                JobPayload::Decoded(probs) => {
                    let frame = Frame::unlabeled(
                        FrameId::new(session_id as usize, guard.engine.frames_seen()),
                        probs,
                    );
                    let verdicts = guard.engine.push_frame(&frame);
                    processed += 1;
                    Response::Verdicts {
                        session: session_id,
                        frame: verdicts.frame,
                        verdicts: verdicts.verdicts,
                    }
                }
                JobPayload::Encoded(payload) => {
                    match guard.engine.push_payload(&payload, dispersion) {
                        Ok(verdicts) => {
                            processed += 1;
                            Response::Verdicts {
                                session: session_id,
                                frame: verdicts.frame,
                                verdicts: verdicts.verdicts,
                            }
                        }
                        // The engine state is untouched on a codec error;
                        // the session keeps serving subsequent frames.
                        Err(e) => bad_request(e),
                    }
                }
            },
            JobKind::Stats => Response::Stats {
                session: session_id,
                stats: guard.engine.session_stats(),
            },
            JobKind::Resume => Response::Resumed {
                session: session_id,
                frames: guard.engine.frames_seen(),
            },
            JobKind::Close => Response::Closed {
                session: session_id,
                stats: guard.engine.session_stats(),
            },
        };
        results.push(Completion {
            conn: job.conn,
            seq: job.seq,
            response,
            evict: None,
        });
    }
    (results, processed)
}
