//! # metaseg-tracking
//!
//! Light-weight segment tracking across video frames, as required by the
//! time-dynamic MetaSeg extension (Section III of the paper).
//!
//! The tracker works purely on predicted label maps (semantic segmentation is
//! assumed to be available anyway): segments in consecutive frames are
//! matched by their pixel overlap after shifting the previous frame's
//! segments to their *expected* location, which is extrapolated from the
//! track's centroid history. Matched segments share a persistent track id, so
//! per-segment metrics can be strung together into time series.
//!
//! ```
//! use metaseg_data::{LabelMap, SemanticClass};
//! use metaseg_tracking::{SegmentTracker, TrackerConfig};
//!
//! // A single car moving right by two pixels per frame.
//! let frames: Vec<LabelMap> = (0..3)
//!     .map(|t| {
//!         LabelMap::from_fn(24, 8, |x, y| {
//!             if y >= 2 && y < 6 && x >= 2 + 2 * t && x < 8 + 2 * t {
//!                 SemanticClass::Car
//!             } else {
//!                 SemanticClass::Road
//!             }
//!         })
//!     })
//!     .collect();
//! let tracks = SegmentTracker::new(TrackerConfig::default()).track(&frames);
//! // The car keeps one track id across all three frames.
//! let car_tracks: Vec<_> = tracks
//!     .frames()
//!     .iter()
//!     .flat_map(|f| f.segments.iter())
//!     .filter(|s| s.class == SemanticClass::Car)
//!     .map(|s| s.track_id)
//!     .collect();
//! assert_eq!(car_tracks.len(), 3);
//! assert!(car_tracks.iter().all(|&id| id == car_tracks[0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tracker;

pub use tracker::{
    FrameTracks, IncrementalTracker, SegmentTracker, TrackedSegment, TrackerConfig, TrackingResult,
};
