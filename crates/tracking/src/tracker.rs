//! Overlap-based segment tracking with expected-location shifting.

use metaseg_data::{LabelMap, SemanticClass};
use metaseg_imgproc::{Connectivity, PixelSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the [`SegmentTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Minimum overlap (IoU between the shifted previous segment and the new
    /// segment) required to continue a track.
    pub min_overlap: f64,
    /// Number of past frames whose segments may still be matched (the paper
    /// matches over multiple frames so short occlusions do not break tracks).
    pub max_gap: usize,
    /// Connectivity used when extracting segments from the label maps.
    pub connectivity: Connectivity,
    /// Ignore segments smaller than this many pixels (they flicker anyway and
    /// matching them is meaningless).
    pub min_segment_area: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            min_overlap: 0.1,
            max_gap: 2,
            connectivity: Connectivity::Eight,
            min_segment_area: 1,
        }
    }
}

/// One segment of one frame together with its assigned track id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackedSegment {
    /// Persistent track id shared across frames.
    pub track_id: usize,
    /// Index of the frame the segment belongs to.
    pub frame: usize,
    /// Connected-component id of the segment inside its frame.
    pub region_id: usize,
    /// Semantic class of the segment.
    pub class: SemanticClass,
    /// Centroid of the segment in pixel coordinates.
    pub centroid: (f64, f64),
    /// Number of pixels.
    pub area: usize,
}

/// All tracked segments of one frame.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameTracks {
    /// Segments of the frame with their track assignments.
    pub segments: Vec<TrackedSegment>,
}

impl FrameTracks {
    /// Track id of the segment with the given region id, if it was tracked.
    pub fn track_of_region(&self, region_id: usize) -> Option<usize> {
        self.segments
            .iter()
            .find(|s| s.region_id == region_id)
            .map(|s| s.track_id)
    }
}

/// Result of tracking a whole sequence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrackingResult {
    frames: Vec<FrameTracks>,
    track_count: usize,
}

impl TrackingResult {
    /// Per-frame track assignments.
    pub fn frames(&self) -> &[FrameTracks] {
        &self.frames
    }

    /// Total number of distinct tracks created.
    pub fn track_count(&self) -> usize {
        self.track_count
    }

    /// All segments of a given track, ordered by frame.
    pub fn track_history(&self, track_id: usize) -> Vec<&TrackedSegment> {
        self.frames
            .iter()
            .flat_map(|f| f.segments.iter())
            .filter(|s| s.track_id == track_id)
            .collect()
    }

    /// Length (number of frames) of the longest track.
    pub fn longest_track_length(&self) -> usize {
        let mut lengths: HashMap<usize, usize> = HashMap::new();
        for segment in self.frames.iter().flat_map(|f| f.segments.iter()) {
            *lengths.entry(segment.track_id).or_default() += 1;
        }
        lengths.values().copied().max().unwrap_or(0)
    }
}

/// Internal per-track state used while matching.
#[derive(Debug, Clone)]
struct TrackState {
    class: SemanticClass,
    /// Pixels of the most recent observation.
    pixels: PixelSet,
    /// Centroid of the most recent observation.
    centroid: (f64, f64),
    /// Estimated velocity in pixels per frame.
    velocity: (f64, f64),
    /// Frame of the most recent observation.
    last_frame: usize,
}

/// The overlap-based tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentTracker {
    config: TrackerConfig,
}

impl SegmentTracker {
    /// Creates a tracker with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `min_overlap` is not in `[0, 1]`.
    pub fn new(config: TrackerConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.min_overlap),
            "min_overlap must be in [0, 1]"
        );
        Self { config }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Tracks the segments of a sequence of predicted label maps.
    ///
    /// Returns one [`FrameTracks`] per input frame; region ids refer to the
    /// connected components extracted with the configured connectivity.
    pub fn track(&self, frames: &[LabelMap]) -> TrackingResult {
        let mut result = TrackingResult::default();
        let mut tracks: Vec<TrackState> = Vec::new();

        for (frame_idx, map) in frames.iter().enumerate() {
            let components = map.segments(self.config.connectivity);
            let mut frame_tracks = FrameTracks::default();
            // Sort candidate segments by size (large segments claim tracks first,
            // which stabilises matching when small fragments split off).
            let mut region_order: Vec<usize> = (0..components.component_count()).collect();
            region_order.sort_by_key(|&id| {
                std::cmp::Reverse(components.region(id).map(|r| r.area()).unwrap_or(0))
            });
            let mut claimed: Vec<bool> = vec![false; tracks.len()];

            for region_id in region_order {
                let region = components
                    .region(region_id)
                    .expect("region id comes from the same labelling");
                let class = SemanticClass::from_id(region.class_id).expect("valid class id");
                if !class.is_evaluated() || region.area() < self.config.min_segment_area {
                    continue;
                }
                let pixels: PixelSet = region.pixels.iter().copied().collect();
                let centroid = region.centroid();

                // Find the best matching existing track of the same class.
                let mut best: Option<(usize, f64)> = None;
                for (track_idx, track) in tracks.iter().enumerate() {
                    if claimed[track_idx]
                        || track.class != class
                        || frame_idx.saturating_sub(track.last_frame) > self.config.max_gap
                    {
                        continue;
                    }
                    let gap = (frame_idx - track.last_frame) as f64;
                    let shift_x = track.velocity.0 * gap;
                    let shift_y = track.velocity.1 * gap;
                    let shifted: PixelSet = track
                        .pixels
                        .iter()
                        .filter_map(|&(x, y)| {
                            let nx = x as f64 + shift_x;
                            let ny = y as f64 + shift_y;
                            if nx < 0.0 || ny < 0.0 {
                                None
                            } else {
                                Some((nx.round() as usize, ny.round() as usize))
                            }
                        })
                        .collect();
                    let overlap = metaseg_imgproc::iou(&shifted, &pixels);
                    if overlap >= self.config.min_overlap && best.map_or(true, |(_, b)| overlap > b)
                    {
                        best = Some((track_idx, overlap));
                    }
                }

                let track_id = match best {
                    Some((track_idx, _)) => {
                        claimed[track_idx] = true;
                        let track = &mut tracks[track_idx];
                        let gap = (frame_idx - track.last_frame).max(1) as f64;
                        track.velocity = (
                            (centroid.0 - track.centroid.0) / gap,
                            (centroid.1 - track.centroid.1) / gap,
                        );
                        track.pixels = pixels;
                        track.centroid = centroid;
                        track.last_frame = frame_idx;
                        track_idx
                    }
                    None => {
                        tracks.push(TrackState {
                            class,
                            pixels,
                            centroid,
                            velocity: (0.0, 0.0),
                            last_frame: frame_idx,
                        });
                        claimed.push(true);
                        tracks.len() - 1
                    }
                };

                frame_tracks.segments.push(TrackedSegment {
                    track_id,
                    frame: frame_idx,
                    region_id,
                    class,
                    centroid,
                    area: region.area(),
                });
            }
            result.frames.push(frame_tracks);
        }

        result.track_count = tracks.len();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A map with one moving car rectangle and one static human ellipse-ish blob.
    fn moving_scene(t: usize) -> LabelMap {
        LabelMap::from_fn(40, 16, |x, y| {
            let car = (10..14).contains(&y) && (4 + 2 * t..12 + 2 * t).contains(&x);
            let human = (4..8).contains(&y) && (30..33).contains(&x);
            if car {
                SemanticClass::Car
            } else if human {
                SemanticClass::Human
            } else if y >= 9 {
                SemanticClass::Road
            } else {
                SemanticClass::Building
            }
        })
    }

    #[test]
    fn moving_object_keeps_its_track_id() {
        let frames: Vec<LabelMap> = (0..5).map(moving_scene).collect();
        let tracker = SegmentTracker::new(TrackerConfig::default());
        let result = tracker.track(&frames);
        assert_eq!(result.frames().len(), 5);

        let car_ids: Vec<usize> = result
            .frames()
            .iter()
            .flat_map(|f| f.segments.iter())
            .filter(|s| s.class == SemanticClass::Car)
            .map(|s| s.track_id)
            .collect();
        assert_eq!(car_ids.len(), 5);
        assert!(car_ids.iter().all(|&id| id == car_ids[0]));

        let human_ids: Vec<usize> = result
            .frames()
            .iter()
            .flat_map(|f| f.segments.iter())
            .filter(|s| s.class == SemanticClass::Human)
            .map(|s| s.track_id)
            .collect();
        assert_eq!(human_ids.len(), 5);
        assert!(human_ids.iter().all(|&id| id == human_ids[0]));
        assert_ne!(car_ids[0], human_ids[0]);
        assert_eq!(result.track_history(car_ids[0]).len(), 5);
        assert_eq!(result.longest_track_length(), 5);
    }

    #[test]
    fn different_classes_never_match() {
        // A car that "turns into" a bus at the same location must start a new track.
        let frame_car = LabelMap::from_fn(20, 10, |x, y| {
            if (5..12).contains(&x) && (3..7).contains(&y) {
                SemanticClass::Car
            } else {
                SemanticClass::Road
            }
        });
        let frame_bus = LabelMap::from_fn(20, 10, |x, y| {
            if (5..12).contains(&x) && (3..7).contains(&y) {
                SemanticClass::Bus
            } else {
                SemanticClass::Road
            }
        });
        let tracker = SegmentTracker::new(TrackerConfig::default());
        let result = tracker.track(&[frame_car, frame_bus]);
        let first: Vec<_> = result.frames()[0]
            .segments
            .iter()
            .filter(|s| s.class == SemanticClass::Car)
            .collect();
        let second: Vec<_> = result.frames()[1]
            .segments
            .iter()
            .filter(|s| s.class == SemanticClass::Bus)
            .collect();
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 1);
        assert_ne!(first[0].track_id, second[0].track_id);
    }

    #[test]
    fn track_survives_a_one_frame_gap() {
        // The object disappears in frame 1 and reappears in frame 2.
        let present = moving_scene(0);
        let absent = LabelMap::from_fn(40, 16, |_, y| {
            if y >= 9 {
                SemanticClass::Road
            } else {
                SemanticClass::Building
            }
        });
        let back = moving_scene(1);
        let tracker = SegmentTracker::new(TrackerConfig {
            max_gap: 2,
            ..TrackerConfig::default()
        });
        let result = tracker.track(&[present, absent, back]);
        let car_ids: Vec<usize> = result
            .frames()
            .iter()
            .flat_map(|f| f.segments.iter())
            .filter(|s| s.class == SemanticClass::Car)
            .map(|s| s.track_id)
            .collect();
        assert_eq!(car_ids.len(), 2);
        assert_eq!(car_ids[0], car_ids[1]);
    }

    #[test]
    fn region_lookup_works() {
        let frames: Vec<LabelMap> = (0..2).map(moving_scene).collect();
        let tracker = SegmentTracker::new(TrackerConfig::default());
        let result = tracker.track(&frames);
        let frame0 = &result.frames()[0];
        for segment in &frame0.segments {
            assert_eq!(
                frame0.track_of_region(segment.region_id),
                Some(segment.track_id)
            );
        }
        assert_eq!(frame0.track_of_region(9999), None);
    }

    #[test]
    #[should_panic]
    fn invalid_overlap_threshold_panics() {
        let _ = SegmentTracker::new(TrackerConfig {
            min_overlap: 1.5,
            ..TrackerConfig::default()
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Track ids of one frame are unique (no two segments of one frame share a track).
        #[test]
        fn prop_track_ids_unique_within_frame(seed in 0u64..300) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let frames: Vec<LabelMap> = (0..4)
                .map(|_| {
                    LabelMap::from_fn(16, 12, |_, _| {
                        let classes = [
                            SemanticClass::Road,
                            SemanticClass::Car,
                            SemanticClass::Building,
                        ];
                        classes[rng.gen_range(0..classes.len())]
                    })
                })
                .collect();
            let tracker = SegmentTracker::new(TrackerConfig::default());
            let result = tracker.track(&frames);
            for frame in result.frames() {
                let mut seen = std::collections::HashSet::new();
                for segment in &frame.segments {
                    prop_assert!(seen.insert(segment.track_id), "duplicate track id in frame");
                }
            }
            // Track ids are dense: all smaller than track_count.
            for frame in result.frames() {
                for segment in &frame.segments {
                    prop_assert!(segment.track_id < result.track_count());
                }
            }
        }
    }
}
