//! Overlap-based segment tracking with expected-location shifting.

use metaseg_data::{LabelMap, SemanticClass};
use metaseg_imgproc::{ComponentLabels, Connectivity, PixelSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the [`SegmentTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Minimum overlap (IoU between the shifted previous segment and the new
    /// segment) required to continue a track.
    pub min_overlap: f64,
    /// Number of past frames whose segments may still be matched (the paper
    /// matches over multiple frames so short occlusions do not break tracks).
    pub max_gap: usize,
    /// Connectivity used when extracting segments from the label maps.
    pub connectivity: Connectivity,
    /// Ignore segments smaller than this many pixels (they flicker anyway and
    /// matching them is meaningless).
    pub min_segment_area: usize,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            min_overlap: 0.1,
            max_gap: 2,
            connectivity: Connectivity::Eight,
            min_segment_area: 1,
        }
    }
}

/// One segment of one frame together with its assigned track id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackedSegment {
    /// Persistent track id shared across frames.
    pub track_id: usize,
    /// Index of the frame the segment belongs to.
    pub frame: usize,
    /// Connected-component id of the segment inside its frame.
    pub region_id: usize,
    /// Semantic class of the segment.
    pub class: SemanticClass,
    /// Centroid of the segment in pixel coordinates.
    pub centroid: (f64, f64),
    /// Number of pixels.
    pub area: usize,
}

/// All tracked segments of one frame.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameTracks {
    /// Segments of the frame with their track assignments.
    pub segments: Vec<TrackedSegment>,
}

impl FrameTracks {
    /// Track id of the segment with the given region id, if it was tracked.
    pub fn track_of_region(&self, region_id: usize) -> Option<usize> {
        self.segments
            .iter()
            .find(|s| s.region_id == region_id)
            .map(|s| s.track_id)
    }
}

/// Result of tracking a whole sequence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrackingResult {
    frames: Vec<FrameTracks>,
    track_count: usize,
}

impl TrackingResult {
    /// Per-frame track assignments.
    pub fn frames(&self) -> &[FrameTracks] {
        &self.frames
    }

    /// Total number of distinct tracks created.
    pub fn track_count(&self) -> usize {
        self.track_count
    }

    /// All segments of a given track, ordered by frame.
    pub fn track_history(&self, track_id: usize) -> Vec<&TrackedSegment> {
        self.frames
            .iter()
            .flat_map(|f| f.segments.iter())
            .filter(|s| s.track_id == track_id)
            .collect()
    }

    /// Length (number of frames) of the longest track.
    pub fn longest_track_length(&self) -> usize {
        let mut lengths: HashMap<usize, usize> = HashMap::new();
        for segment in self.frames.iter().flat_map(|f| f.segments.iter()) {
            *lengths.entry(segment.track_id).or_default() += 1;
        }
        lengths.values().copied().max().unwrap_or(0)
    }
}

/// Internal per-track state used while matching.
#[derive(Debug, Clone)]
struct TrackState {
    /// Persistent track id (assigned once, never reused).
    id: usize,
    class: SemanticClass,
    /// Pixels of the most recent observation.
    pixels: PixelSet,
    /// Centroid of the most recent observation.
    centroid: (f64, f64),
    /// Estimated velocity in pixels per frame.
    velocity: (f64, f64),
    /// Frame of the most recent observation.
    last_frame: usize,
}

/// Incremental, bounded-memory segment tracker.
///
/// The streaming counterpart of [`SegmentTracker::track`]: frames are fed one
/// at a time through [`IncrementalTracker::observe`], which returns the track
/// assignments of that frame immediately. Tracks that have not been observed
/// for more than [`TrackerConfig::max_gap`] frames can never be matched again
/// and are pruned, so the tracker's state stays proportional to the number of
/// segments seen in the last `max_gap + 1` frames — not to the length of the
/// stream. Track ids are assigned from a monotone counter and are **never
/// reused**, even after a track is pruned.
///
/// Feeding the frames of a clip through `observe` in order produces exactly
/// the same assignments as the batch [`SegmentTracker::track`] call (which is
/// implemented as precisely that loop).
#[derive(Debug, Clone)]
pub struct IncrementalTracker {
    config: TrackerConfig,
    /// Live tracks in creation order (creation order makes the best-overlap
    /// tie-break identical to the historical batch implementation).
    active: Vec<TrackState>,
    /// Next track id to assign; doubles as the total number of tracks created.
    next_track_id: usize,
    /// Index of the next frame `observe` will see.
    next_frame: usize,
}

impl IncrementalTracker {
    /// Creates an incremental tracker with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `min_overlap` is not in `[0, 1]`.
    pub fn new(config: TrackerConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.min_overlap),
            "min_overlap must be in [0, 1]"
        );
        Self {
            config,
            active: Vec::new(),
            next_track_id: 0,
            next_frame: 0,
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Number of frames observed so far.
    pub fn frames_seen(&self) -> usize {
        self.next_frame
    }

    /// Total number of distinct tracks created so far (pruned tracks count;
    /// ids are never reused).
    pub fn track_count(&self) -> usize {
        self.next_track_id
    }

    /// Number of tracks currently held in memory (the bounded working set).
    pub fn active_track_count(&self) -> usize {
        self.active.len()
    }

    /// Consumes the next frame of the stream and returns its track
    /// assignments. Region ids refer to the connected components extracted
    /// from `map` with the configured connectivity.
    pub fn observe(&mut self, map: &LabelMap) -> FrameTracks {
        self.observe_segments(&map.segments(self.config.connectivity))
    }

    /// [`IncrementalTracker::observe`] with caller-supplied connected
    /// components of the frame's label map — for consumers (the streaming
    /// engine) that already labelled the frame for metric extraction and
    /// share one labelling per frame. `components` must use the tracker's
    /// configured connectivity.
    pub fn observe_segments(&mut self, components: &ComponentLabels) -> FrameTracks {
        let frame_idx = self.next_frame;
        self.next_frame += 1;

        // Tracks that already exceed the matching horizon can never be
        // continued; dropping them here is what bounds the working set.
        self.active
            .retain(|t| frame_idx.saturating_sub(t.last_frame) <= self.config.max_gap);

        let mut frame_tracks = FrameTracks::default();
        // Sort candidate segments by size (large segments claim tracks first,
        // which stabilises matching when small fragments split off).
        let mut region_order: Vec<usize> = (0..components.component_count()).collect();
        region_order.sort_by_key(|&id| {
            std::cmp::Reverse(components.region(id).map(|r| r.area()).unwrap_or(0))
        });
        let mut claimed: Vec<bool> = vec![false; self.active.len()];

        // Bucket the pixels of every matchable region in one row-major walk
        // of the label grid — O(pixels) total, where per-region
        // `pixels_of` bounding-box scans would cost O(Σ bbox areas).
        let matchable: Vec<bool> = components
            .regions()
            .iter()
            .map(|region| {
                SemanticClass::from_id(region.class_id)
                    .map(|class| class.is_evaluated())
                    .unwrap_or(false)
                    && region.area() >= self.config.min_segment_area
            })
            .collect();
        let mut pixel_sets: Vec<PixelSet> = components
            .regions()
            .iter()
            .map(|region| {
                if matchable[region.id] {
                    PixelSet::with_capacity(region.area())
                } else {
                    PixelSet::new()
                }
            })
            .collect();
        for ((x, y), &id) in components.labels().iter_pixels() {
            if matchable[id] {
                pixel_sets[id].insert((x, y));
            }
        }

        for region_id in region_order {
            let region = components
                .region(region_id)
                .expect("region id comes from the same labelling");
            let class = SemanticClass::from_id(region.class_id).expect("valid class id");
            if !class.is_evaluated() || region.area() < self.config.min_segment_area {
                continue;
            }
            let pixels: PixelSet = std::mem::take(&mut pixel_sets[region_id]);
            let centroid = region.centroid();

            // Find the best matching existing track of the same class.
            let mut best: Option<(usize, f64)> = None;
            for (track_idx, track) in self.active.iter().enumerate() {
                if claimed[track_idx] || track.class != class {
                    continue;
                }
                let gap = (frame_idx - track.last_frame) as f64;
                let shift_x = track.velocity.0 * gap;
                let shift_y = track.velocity.1 * gap;
                let shifted: PixelSet = track
                    .pixels
                    .iter()
                    .filter_map(|&(x, y)| {
                        let nx = x as f64 + shift_x;
                        let ny = y as f64 + shift_y;
                        if nx < 0.0 || ny < 0.0 {
                            None
                        } else {
                            Some((nx.round() as usize, ny.round() as usize))
                        }
                    })
                    .collect();
                let overlap = metaseg_imgproc::iou(&shifted, &pixels);
                if overlap >= self.config.min_overlap && best.is_none_or(|(_, b)| overlap > b) {
                    best = Some((track_idx, overlap));
                }
            }

            let track_id = match best {
                Some((track_idx, _)) => {
                    claimed[track_idx] = true;
                    let track = &mut self.active[track_idx];
                    let gap = (frame_idx - track.last_frame).max(1) as f64;
                    track.velocity = (
                        (centroid.0 - track.centroid.0) / gap,
                        (centroid.1 - track.centroid.1) / gap,
                    );
                    track.pixels = pixels;
                    track.centroid = centroid;
                    track.last_frame = frame_idx;
                    track.id
                }
                None => {
                    let id = self.next_track_id;
                    self.next_track_id += 1;
                    self.active.push(TrackState {
                        id,
                        class,
                        pixels,
                        centroid,
                        velocity: (0.0, 0.0),
                        last_frame: frame_idx,
                    });
                    claimed.push(true);
                    id
                }
            };

            frame_tracks.segments.push(TrackedSegment {
                track_id,
                frame: frame_idx,
                region_id,
                class,
                centroid,
                area: region.area(),
            });
        }
        frame_tracks
    }
}

/// The overlap-based tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentTracker {
    config: TrackerConfig,
}

impl SegmentTracker {
    /// Creates a tracker with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `min_overlap` is not in `[0, 1]`.
    pub fn new(config: TrackerConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.min_overlap),
            "min_overlap must be in [0, 1]"
        );
        Self { config }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Starts an incremental tracking session with this tracker's
    /// configuration — the streaming entry point.
    pub fn begin(&self) -> IncrementalTracker {
        IncrementalTracker::new(self.config)
    }

    /// Tracks the segments of a sequence of predicted label maps.
    ///
    /// Returns one [`FrameTracks`] per input frame; region ids refer to the
    /// connected components extracted with the configured connectivity.
    ///
    /// This is the batch convenience over [`IncrementalTracker`]: the clip is
    /// drained through [`IncrementalTracker::observe`] frame by frame.
    pub fn track(&self, frames: &[LabelMap]) -> TrackingResult {
        let mut session = self.begin();
        let frames = frames.iter().map(|map| session.observe(map)).collect();
        TrackingResult {
            frames,
            track_count: session.track_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A map with one moving car rectangle and one static human ellipse-ish blob.
    fn moving_scene(t: usize) -> LabelMap {
        LabelMap::from_fn(40, 16, |x, y| {
            let car = (10..14).contains(&y) && (4 + 2 * t..12 + 2 * t).contains(&x);
            let human = (4..8).contains(&y) && (30..33).contains(&x);
            if car {
                SemanticClass::Car
            } else if human {
                SemanticClass::Human
            } else if y >= 9 {
                SemanticClass::Road
            } else {
                SemanticClass::Building
            }
        })
    }

    #[test]
    fn moving_object_keeps_its_track_id() {
        let frames: Vec<LabelMap> = (0..5).map(moving_scene).collect();
        let tracker = SegmentTracker::new(TrackerConfig::default());
        let result = tracker.track(&frames);
        assert_eq!(result.frames().len(), 5);

        let car_ids: Vec<usize> = result
            .frames()
            .iter()
            .flat_map(|f| f.segments.iter())
            .filter(|s| s.class == SemanticClass::Car)
            .map(|s| s.track_id)
            .collect();
        assert_eq!(car_ids.len(), 5);
        assert!(car_ids.iter().all(|&id| id == car_ids[0]));

        let human_ids: Vec<usize> = result
            .frames()
            .iter()
            .flat_map(|f| f.segments.iter())
            .filter(|s| s.class == SemanticClass::Human)
            .map(|s| s.track_id)
            .collect();
        assert_eq!(human_ids.len(), 5);
        assert!(human_ids.iter().all(|&id| id == human_ids[0]));
        assert_ne!(car_ids[0], human_ids[0]);
        assert_eq!(result.track_history(car_ids[0]).len(), 5);
        assert_eq!(result.longest_track_length(), 5);
    }

    #[test]
    fn different_classes_never_match() {
        // A car that "turns into" a bus at the same location must start a new track.
        let frame_car = LabelMap::from_fn(20, 10, |x, y| {
            if (5..12).contains(&x) && (3..7).contains(&y) {
                SemanticClass::Car
            } else {
                SemanticClass::Road
            }
        });
        let frame_bus = LabelMap::from_fn(20, 10, |x, y| {
            if (5..12).contains(&x) && (3..7).contains(&y) {
                SemanticClass::Bus
            } else {
                SemanticClass::Road
            }
        });
        let tracker = SegmentTracker::new(TrackerConfig::default());
        let result = tracker.track(&[frame_car, frame_bus]);
        let first: Vec<_> = result.frames()[0]
            .segments
            .iter()
            .filter(|s| s.class == SemanticClass::Car)
            .collect();
        let second: Vec<_> = result.frames()[1]
            .segments
            .iter()
            .filter(|s| s.class == SemanticClass::Bus)
            .collect();
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 1);
        assert_ne!(first[0].track_id, second[0].track_id);
    }

    #[test]
    fn track_survives_a_one_frame_gap() {
        // The object disappears in frame 1 and reappears in frame 2.
        let present = moving_scene(0);
        let absent = LabelMap::from_fn(40, 16, |_, y| {
            if y >= 9 {
                SemanticClass::Road
            } else {
                SemanticClass::Building
            }
        });
        let back = moving_scene(1);
        let tracker = SegmentTracker::new(TrackerConfig {
            max_gap: 2,
            ..TrackerConfig::default()
        });
        let result = tracker.track(&[present, absent, back]);
        let car_ids: Vec<usize> = result
            .frames()
            .iter()
            .flat_map(|f| f.segments.iter())
            .filter(|s| s.class == SemanticClass::Car)
            .map(|s| s.track_id)
            .collect();
        assert_eq!(car_ids.len(), 2);
        assert_eq!(car_ids[0], car_ids[1]);
    }

    #[test]
    fn region_lookup_works() {
        let frames: Vec<LabelMap> = (0..2).map(moving_scene).collect();
        let tracker = SegmentTracker::new(TrackerConfig::default());
        let result = tracker.track(&frames);
        let frame0 = &result.frames()[0];
        for segment in &frame0.segments {
            assert_eq!(
                frame0.track_of_region(segment.region_id),
                Some(segment.track_id)
            );
        }
        assert_eq!(frame0.track_of_region(9999), None);
    }

    #[test]
    #[should_panic]
    fn invalid_overlap_threshold_panics() {
        let _ = SegmentTracker::new(TrackerConfig {
            min_overlap: 1.5,
            ..TrackerConfig::default()
        });
    }

    /// A frame with no evaluated segments at all (everything void).
    fn void_scene() -> LabelMap {
        LabelMap::from_fn(40, 16, |_, _| SemanticClass::Void)
    }

    /// Independent reimplementation of the historical clip-at-once tracker
    /// (every track kept forever in a vec, track ids = vec indices, stale
    /// tracks skipped during matching instead of pruned). Retained as the
    /// oracle for the incremental tracker, mirroring how
    /// `metaseg::pipeline::reference` pins the single-pass metric extraction.
    fn reference_batch_track(
        config: &TrackerConfig,
        frames: &[LabelMap],
    ) -> (Vec<FrameTracks>, usize) {
        struct RefTrack {
            class: SemanticClass,
            pixels: PixelSet,
            centroid: (f64, f64),
            velocity: (f64, f64),
            last_frame: usize,
        }
        let mut tracks: Vec<RefTrack> = Vec::new();
        let mut result = Vec::new();
        for (frame_idx, map) in frames.iter().enumerate() {
            let components = map.segments(config.connectivity);
            let mut frame_tracks = FrameTracks::default();
            let mut region_order: Vec<usize> = (0..components.component_count()).collect();
            region_order.sort_by_key(|&id| {
                std::cmp::Reverse(components.region(id).map(|r| r.area()).unwrap_or(0))
            });
            let mut claimed: Vec<bool> = vec![false; tracks.len()];
            for region_id in region_order {
                let region = components.region(region_id).unwrap();
                let class = SemanticClass::from_id(region.class_id).unwrap();
                if !class.is_evaluated() || region.area() < config.min_segment_area {
                    continue;
                }
                let pixels: PixelSet = components.pixels_of(region_id).collect();
                let centroid = region.centroid();
                let mut best: Option<(usize, f64)> = None;
                for (track_idx, track) in tracks.iter().enumerate() {
                    if claimed[track_idx]
                        || track.class != class
                        || frame_idx.saturating_sub(track.last_frame) > config.max_gap
                    {
                        continue;
                    }
                    let gap = (frame_idx - track.last_frame) as f64;
                    let shifted: PixelSet = track
                        .pixels
                        .iter()
                        .filter_map(|&(x, y)| {
                            let nx = x as f64 + track.velocity.0 * gap;
                            let ny = y as f64 + track.velocity.1 * gap;
                            if nx < 0.0 || ny < 0.0 {
                                None
                            } else {
                                Some((nx.round() as usize, ny.round() as usize))
                            }
                        })
                        .collect();
                    let overlap = metaseg_imgproc::iou(&shifted, &pixels);
                    if overlap >= config.min_overlap && best.is_none_or(|(_, b)| overlap > b) {
                        best = Some((track_idx, overlap));
                    }
                }
                let track_id = match best {
                    Some((track_idx, _)) => {
                        claimed[track_idx] = true;
                        let track = &mut tracks[track_idx];
                        let gap = (frame_idx - track.last_frame).max(1) as f64;
                        track.velocity = (
                            (centroid.0 - track.centroid.0) / gap,
                            (centroid.1 - track.centroid.1) / gap,
                        );
                        track.pixels = pixels;
                        track.centroid = centroid;
                        track.last_frame = frame_idx;
                        track_idx
                    }
                    None => {
                        tracks.push(RefTrack {
                            class,
                            pixels,
                            centroid,
                            velocity: (0.0, 0.0),
                            last_frame: frame_idx,
                        });
                        claimed.push(true);
                        tracks.len() - 1
                    }
                };
                frame_tracks.segments.push(TrackedSegment {
                    track_id,
                    frame: frame_idx,
                    region_id,
                    class,
                    centroid,
                    area: region.area(),
                });
            }
            result.push(frame_tracks);
        }
        (result, tracks.len())
    }

    #[test]
    fn empty_frame_mid_stream_yields_no_tracks_and_does_not_break_the_stream() {
        let mut session = IncrementalTracker::new(TrackerConfig::default());
        let before = session.observe(&moving_scene(0));
        assert!(!before.segments.is_empty());
        let empty = session.observe(&void_scene());
        assert!(empty.segments.is_empty());
        let after = session.observe(&moving_scene(1));
        assert_eq!(session.frames_seen(), 3);
        // The car resumes its old track across the empty frame (gap 2 <= max_gap).
        let car_before = before
            .segments
            .iter()
            .find(|s| s.class == SemanticClass::Car)
            .unwrap();
        let car_after = after
            .segments
            .iter()
            .find(|s| s.class == SemanticClass::Car)
            .unwrap();
        assert_eq!(car_before.track_id, car_after.track_id);
    }

    #[test]
    fn reappearing_segment_beyond_max_gap_gets_a_fresh_id_never_reused() {
        let config = TrackerConfig {
            max_gap: 1,
            ..TrackerConfig::default()
        };
        let mut session = IncrementalTracker::new(config);
        let first = session.observe(&moving_scene(0));
        let car_id = first
            .segments
            .iter()
            .find(|s| s.class == SemanticClass::Car)
            .unwrap()
            .track_id;
        let created_before_gap = session.track_count();
        // The car is gone for two frames — longer than max_gap.
        session.observe(&void_scene());
        session.observe(&void_scene());
        assert_eq!(
            session.active_track_count(),
            0,
            "all tracks must be pruned after the gap"
        );
        let back = session.observe(&moving_scene(1));
        let new_car_id = back
            .segments
            .iter()
            .find(|s| s.class == SemanticClass::Car)
            .unwrap()
            .track_id;
        assert_ne!(car_id, new_car_id, "pruned track ids must never be reused");
        assert!(
            new_car_id >= created_before_gap,
            "new ids come from the monotone counter, above every id ever created"
        );
    }

    #[test]
    fn first_frame_only_segment_is_pruned_but_keeps_its_id_reserved() {
        // The human exists only in frame 0; the car moves on.
        let with_human = moving_scene(0);
        let without_human = |t: usize| {
            LabelMap::from_fn(40, 16, |x, y| {
                let car = (10..14).contains(&y) && (4 + 2 * t..12 + 2 * t).contains(&x);
                if car {
                    SemanticClass::Car
                } else if y >= 9 {
                    SemanticClass::Road
                } else {
                    SemanticClass::Building
                }
            })
        };
        let config = TrackerConfig {
            max_gap: 1,
            ..TrackerConfig::default()
        };
        let mut session = IncrementalTracker::new(config);
        let first = session.observe(&with_human);
        let human_id = first
            .segments
            .iter()
            .find(|s| s.class == SemanticClass::Human)
            .unwrap()
            .track_id;
        let active_with_human = session.active_track_count();
        let mut later_ids = Vec::new();
        for t in 1..5 {
            let tracks = session.observe(&without_human(t));
            later_ids.extend(tracks.segments.iter().map(|s| s.track_id));
        }
        // The one-frame track fell out of the working set...
        assert!(session.active_track_count() < active_with_human);
        // ...but its id is reserved forever: no later segment carries it.
        assert!(later_ids.iter().all(|&id| id != human_id));
        assert!(session.track_count() > human_id);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Track ids of one frame are unique (no two segments of one frame share a track).
        #[test]
        fn prop_track_ids_unique_within_frame(seed in 0u64..300) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let frames: Vec<LabelMap> = (0..4)
                .map(|_| {
                    LabelMap::from_fn(16, 12, |_, _| {
                        let classes = [
                            SemanticClass::Road,
                            SemanticClass::Car,
                            SemanticClass::Building,
                        ];
                        classes[rng.gen_range(0..classes.len())]
                    })
                })
                .collect();
            let tracker = SegmentTracker::new(TrackerConfig::default());
            let result = tracker.track(&frames);
            for frame in result.frames() {
                let mut seen = std::collections::HashSet::new();
                for segment in &frame.segments {
                    prop_assert!(seen.insert(segment.track_id), "duplicate track id in frame");
                }
            }
            // Track ids are dense: all smaller than track_count.
            for frame in result.frames() {
                for segment in &frame.segments {
                    prop_assert!(segment.track_id < result.track_count());
                }
            }
        }

        /// Feeding frames through the incremental API (and therefore through
        /// the batch `track` call, which drains it) is byte-for-byte
        /// identical to an independent reimplementation of the historical
        /// clip-at-once algorithm, while the incremental working set stays
        /// bounded by the recent-segment count.
        #[test]
        fn prop_incremental_matches_reference_oracle(seed in 0u64..300) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
            let frames: Vec<LabelMap> = (0..6)
                .map(|_| {
                    LabelMap::from_fn(16, 12, |_, _| {
                        let classes = [
                            SemanticClass::Road,
                            SemanticClass::Car,
                            SemanticClass::Building,
                            SemanticClass::Void,
                        ];
                        classes[rng.gen_range(0..classes.len())]
                    })
                })
                .collect();
            let tracker = SegmentTracker::new(TrackerConfig::default());
            let (oracle_frames, oracle_count) =
                reference_batch_track(tracker.config(), &frames);

            let mut session = tracker.begin();
            for (frame_idx, map) in frames.iter().enumerate() {
                let incremental = session.observe(map);
                prop_assert_eq!(&incremental, &oracle_frames[frame_idx]);
                // Bounded memory: active tracks never exceed the number of
                // evaluated segments seen in the last max_gap + 1 frames.
                let window_start = frame_idx.saturating_sub(tracker.config().max_gap);
                let recent: usize = oracle_frames[window_start..=frame_idx]
                    .iter()
                    .map(|f| f.segments.len())
                    .sum();
                prop_assert!(session.active_track_count() <= recent);
            }
            prop_assert_eq!(session.track_count(), oracle_count);

            // The batch convenience is the same drain loop.
            let batch = tracker.track(&frames);
            prop_assert_eq!(batch.frames(), oracle_frames.as_slice());
            prop_assert_eq!(batch.track_count(), oracle_count);
        }
    }
}
