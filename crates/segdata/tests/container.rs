//! Adversarial and differential tests for the chunked container format.
//!
//! Three properties the rest of the workspace leans on are pinned here:
//! decoding is *total* (no input — corrupt, truncated, version-skewed —
//! panics or allocates from unvalidated lengths), every chunk's CRC-32
//! detects single-byte corruption, and band-parallel decoding is
//! bit-identical to serial decoding for every thread count, encoding and
//! awkward shape.

use metaseg_data::container::{
    self, CHUNK_HEADER_LEN, CONTAINER_HEADER_LEN, GRID_DESC_LEN, MAX_TEXT_CHUNK_BYTES,
};
use metaseg_data::{
    ContainerError, Frame, FrameId, LabelMap, ProbEncoding, ProbMap, ProbPayload, SemanticClass,
};
use proptest::prelude::*;

/// A map of the given shape filled with arbitrary (not necessarily
/// normalized) values — the container must not care about distribution
/// validity, exactly like the payload codec.
fn arbitrary_map(width: usize, height: usize, channels: usize, values: &[f64]) -> ProbMap {
    let mut map = ProbMap::uniform(width, height, channels);
    let mut cursor = values.iter().cycle();
    for y in 0..height {
        for x in 0..width {
            let dist: Vec<f64> = (0..channels).map(|_| *cursor.next().unwrap()).collect();
            map.set_distribution_unchecked(x, y, &dist);
        }
    }
    map
}

fn sample_payload(
    width: usize,
    height: usize,
    channels: usize,
    encoding: ProbEncoding,
) -> ProbPayload {
    let map = arbitrary_map(
        width,
        height,
        channels,
        &[0.125, 0.5, 1.0 / 3.0, 0.0625, 1e-9, 0.75],
    );
    ProbPayload::encode(&map, encoding)
}

/// Byte ranges of every chunk's stored body inside a grid container,
/// recovered by walking the layout (header, descriptor, then chunks).
fn grid_chunk_bodies(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut bodies = Vec::new();
    let mut pos = CONTAINER_HEADER_LEN + GRID_DESC_LEN;
    while pos + CHUNK_HEADER_LEN <= bytes.len() {
        let stored_len = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().unwrap()) as usize;
        let body = pos + CHUNK_HEADER_LEN..pos + CHUNK_HEADER_LEN + stored_len;
        assert!(body.end <= bytes.len(), "walker stays inside the container");
        bodies.push(body);
        pos += CHUNK_HEADER_LEN + stored_len;
    }
    bodies
}

#[test]
fn grid_roundtrips_across_encodings_bands_and_compression() {
    for encoding in [ProbEncoding::F64, ProbEncoding::F32, ProbEncoding::U16] {
        for bands in [1usize, 2, 3, 5, 64] {
            for compress in [false, true] {
                let payload = sample_payload(7, 5, 3, encoding);
                let bytes = container::write_grid(&payload, bands, compress).unwrap();
                assert!(container::is_container(&bytes));
                assert_eq!(
                    container::read_grid(&bytes).unwrap(),
                    payload,
                    "encoding {} bands {bands} compress {compress}",
                    encoding.name()
                );
            }
        }
    }
}

#[test]
fn parallel_band_decode_is_bit_identical_to_serial() {
    // Awkward shapes on purpose: 1-px-wide, 1-row, and heights that do not
    // divide by the band count; every thread count must agree bit for bit.
    let shapes = [
        (1usize, 64usize, 3usize),
        (64, 1, 5),
        (5, 7, 4),
        (16, 13, 2),
    ];
    for (width, height, channels) in shapes {
        for encoding in [ProbEncoding::F64, ProbEncoding::F32, ProbEncoding::U16] {
            for bands in [1usize, 3, 7] {
                for compress in [false, true] {
                    let payload = sample_payload(width, height, channels, encoding);
                    let bytes = container::write_grid(&payload, bands, compress).unwrap();
                    let serial = container::read_grid_with_threads(&bytes, 1).unwrap();
                    assert_eq!(serial, payload);
                    for threads in [2usize, 3, 7] {
                        let parallel = container::read_grid_with_threads(&bytes, threads).unwrap();
                        assert_eq!(
                            parallel.bytes,
                            serial.bytes,
                            "{width}x{height}x{channels} {} bands {bands} threads {threads}",
                            encoding.name()
                        );
                        assert_eq!(parallel, serial);
                    }
                }
            }
        }
    }
}

#[test]
fn truncation_at_every_boundary_never_panics_and_always_errors() {
    let payload = sample_payload(6, 4, 3, ProbEncoding::U16);
    let bytes = container::write_grid(&payload, 3, true).unwrap();
    for cut in 0..bytes.len() {
        assert!(
            container::read_grid(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must not decode"
        );
    }
    // Appending bytes is just as invalid as removing them.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(matches!(
        container::read_grid(&padded),
        Err(ContainerError::TrailingBytes(1))
    ));
}

#[test]
fn unknown_version_and_kind_are_rejected_before_any_allocation() {
    let payload = sample_payload(4, 4, 2, ProbEncoding::F32);
    let bytes = container::write_grid(&payload, 2, false).unwrap();

    let mut skewed = bytes.clone();
    skewed[4] = 9;
    assert_eq!(
        container::read_grid(&skewed),
        Err(ContainerError::UnsupportedVersion(9))
    );

    let mut unknown = bytes.clone();
    unknown[5] = 200;
    assert_eq!(
        container::read_grid(&unknown),
        Err(ContainerError::UnknownKind(200))
    );

    let mut wrong = bytes.clone();
    wrong[5] = 1; // a checkpoint container handed to the grid reader
    assert!(matches!(
        container::read_grid(&wrong),
        Err(ContainerError::WrongKind { .. })
    ));

    let mut flags = bytes;
    flags[6] = 0b1000_0000;
    assert!(matches!(
        container::read_grid(&flags),
        Err(ContainerError::UnknownFlags(_))
    ));

    // A descriptor declaring a petabyte field is capped before the payload
    // buffer is sized, let alone allocated: only the tiny input slice is
    // ever touched.
    let mut huge =
        container::write_grid(&sample_payload(2, 2, 1, ProbEncoding::F64), 1, false).unwrap();
    huge[8..12].copy_from_slice(&2_000_000u32.to_le_bytes());
    huge[12..16].copy_from_slice(&2_000_000u32.to_le_bytes());
    assert!(matches!(
        container::read_grid(&huge),
        Err(ContainerError::ChunkTooLarge { .. })
    ));

    // A record chunk declaring a huge decompressed size is likewise capped
    // before its buffer exists.
    let mut record = container::write_records(["x"], true).unwrap();
    let declared = (MAX_TEXT_CHUNK_BYTES + 1) as u32;
    record[CONTAINER_HEADER_LEN + 4..CONTAINER_HEADER_LEN + 8]
        .copy_from_slice(&declared.to_le_bytes());
    assert!(matches!(
        container::read_records(&record),
        Err(ContainerError::ChunkTooLarge { .. })
    ));
}

proptest! {
    /// Flipping any single byte of any chunk body yields the typed CRC
    /// error — corruption can never be mistaken for data.
    #[test]
    fn prop_chunk_body_corruption_yields_a_checksum_mismatch(
        values in proptest::collection::vec(0.0f64..=1.0, 12),
        bands in 1usize..5,
        compress in any::<bool>(),
        position in any::<u64>(),
        flip in 1u8..=255
    ) {
        let map = arbitrary_map(5, 4, 3, &values);
        let payload = ProbPayload::encode(&map, ProbEncoding::U16);
        let bytes = container::write_grid(&payload, bands, compress).unwrap();
        let bodies = grid_chunk_bodies(&bytes);
        let total: usize = bodies.iter().map(|b| b.len()).sum();
        prop_assume!(total > 0);
        // Pick the corruption position uniformly over the body bytes.
        let mut offset = (position % total as u64) as usize;
        let target = bodies
            .iter()
            .find_map(|body| {
                if offset < body.len() {
                    Some(body.start + offset)
                } else {
                    offset -= body.len();
                    None
                }
            })
            .expect("offset lies inside some body");
        let mut corrupt = bytes.clone();
        corrupt[target] ^= flip;
        prop_assert!(matches!(
            container::read_grid(&corrupt),
            Err(ContainerError::ChecksumMismatch { .. })
        ));
    }

    /// Flipping any single byte anywhere — headers, descriptors, chunk
    /// headers, bodies — never panics: the result is a typed error, or (for
    /// the one semantically inert bit, the compression-allowed flag over an
    /// all-raw container) the original payload.
    #[test]
    fn prop_any_single_byte_flip_is_total(
        values in proptest::collection::vec(0.0f64..=1.0, 12),
        bands in 1usize..4,
        compress in any::<bool>(),
        position in any::<u64>(),
        flip in 1u8..=255,
        threads in 1usize..4
    ) {
        let map = arbitrary_map(4, 3, 2, &values);
        let payload = ProbPayload::encode(&map, ProbEncoding::F32);
        let bytes = container::write_grid(&payload, bands, compress).unwrap();
        let position = (position % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[position] ^= flip;
        match container::read_grid_with_threads(&corrupt, threads) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, payload),
        }
    }

    /// Arbitrary byte soup (optionally with a forced-valid prefix) never
    /// panics any reader.
    #[test]
    fn prop_arbitrary_bytes_never_panic_any_reader(
        bytes in proptest::collection::vec(0u8..=255, 0..160),
        force_magic in any::<bool>()
    ) {
        let mut bytes = bytes;
        if force_magic && bytes.len() >= 6 {
            bytes[..4].copy_from_slice(b"MSGC");
            bytes[4] = 1;
        }
        let _ = container::read_grid(&bytes);
        let _ = container::read_records(&bytes);
        let _ = container::read_checkpoint(&bytes);
        let _ = container::read_corpus(&bytes);
    }

    /// Grid containers round-trip arbitrary payloads across every encoding,
    /// band count, compression setting and thread count.
    #[test]
    fn prop_grid_roundtrips(
        dims in (1usize..6, 1usize..7, 1usize..4),
        values in proptest::collection::vec(0.0f64..=1.0, 24),
        tag in 0u8..3,
        bands in 1usize..9,
        compress in any::<bool>(),
        threads in 1usize..5
    ) {
        let (width, height, channels) = dims;
        let encoding = ProbEncoding::from_tag(tag).unwrap();
        let payload = ProbPayload::encode(&arbitrary_map(width, height, channels, &values), encoding);
        let bytes = container::write_grid(&payload, bands, compress).unwrap();
        prop_assert_eq!(container::read_grid_with_threads(&bytes, threads).unwrap(), payload);
    }
}

#[test]
fn compression_shrinks_runs_and_survives_the_roundtrip() {
    // A one-hot field is byte-run heavy: PackBits must actually shrink it.
    let labels = LabelMap::filled(32, 16, SemanticClass::Road);
    let map = ProbMap::one_hot(&labels, 19);
    let payload = ProbPayload::encode(&map, ProbEncoding::U16);
    let raw = container::write_grid(&payload, 4, false).unwrap();
    let packed = container::write_grid(&payload, 4, true).unwrap();
    assert!(
        packed.len() * 4 < raw.len(),
        "one-hot payload must compress at least 4x ({} vs {})",
        packed.len(),
        raw.len()
    );
    assert_eq!(container::read_grid(&packed).unwrap(), payload);
    assert_eq!(container::read_grid(&raw).unwrap(), payload);
}

/// A labelled frame with structured ground truth and a NaN planted in the
/// prediction: the F64 corpus must preserve the NaN bit pattern exactly.
fn corpus_frames() -> Vec<Frame> {
    let mut frames = Vec::new();
    for index in 0..3 {
        let labels = LabelMap::from_fn(6, 5, |x, y| {
            if (x + y + index) % 2 == 0 {
                SemanticClass::Road
            } else {
                SemanticClass::Car
            }
        });
        let mut prediction = arbitrary_map(6, 5, 4, &[0.1, 0.2, 0.3, 0.4, 0.5]);
        prediction.set_distribution_unchecked(1, 1, &[f64::NAN, 0.5, 0.25, 0.25]);
        frames.push(Frame::labeled(FrameId::new(2, index), labels, prediction).unwrap());
    }
    frames.push(Frame::unlabeled(
        FrameId::new(3, 0),
        arbitrary_map(6, 5, 4, &[0.7, 0.1, 0.1, 0.1]),
    ));
    frames
}

#[test]
fn frame_corpus_roundtrips_ids_ground_truth_and_nan_bits() {
    let frames = corpus_frames();
    for compress in [false, true] {
        let bytes = container::write_corpus(&frames, ProbEncoding::F64, 2, compress).unwrap();
        let replayed = container::read_corpus(&bytes).unwrap();
        assert_eq!(replayed.len(), frames.len());
        for (original, replay) in frames.iter().zip(&replayed) {
            assert_eq!(replay.id, original.id);
            assert_eq!(replay.ground_truth, original.ground_truth);
            // Bit-exact through the lossless encoding, NaN included: the
            // payload bytes are the `to_le_bytes` image of the field.
            assert_eq!(
                replay.payload,
                ProbPayload::encode(&original.prediction, ProbEncoding::F64)
            );
            let frame = replay.to_frame().unwrap();
            assert_eq!(frame.id, original.id);
            assert_eq!(frame.ground_truth, original.ground_truth);
            assert_eq!(
                frame
                    .prediction
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                original
                    .prediction
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn frame_corpus_end_of_stream_is_only_valid_at_frame_boundaries() {
    let frames = corpus_frames();
    let bytes = container::write_corpus(&frames, ProbEncoding::F32, 2, false).unwrap();

    // Locate the frame boundaries by re-reading with a counting reader.
    let mut boundaries = vec![CONTAINER_HEADER_LEN];
    let mut pos = CONTAINER_HEADER_LEN;
    while pos < bytes.len() {
        // Each chunk: 16-byte header + stored bytes. Frames are delimited by
        // TAG_FRAME chunks.
        let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let stored = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().unwrap()) as usize;
        if tag == container::TAG_FRAME && pos != CONTAINER_HEADER_LEN {
            boundaries.push(pos);
        }
        pos += CHUNK_HEADER_LEN + stored;
    }
    boundaries.push(bytes.len());
    assert_eq!(boundaries.len(), frames.len() + 1);

    for cut in 0..=bytes.len() {
        match container::read_corpus(&bytes[..cut]) {
            Ok(replayed) => {
                let frames_before_cut = boundaries
                    .iter()
                    .filter(|&&b| b <= cut)
                    .count()
                    .saturating_sub(1);
                assert_eq!(
                    boundaries[frames_before_cut], cut,
                    "a successful read must end exactly on a frame boundary"
                );
                assert_eq!(replayed.len(), frames_before_cut);
            }
            Err(_) => {
                assert!(
                    !boundaries.contains(&cut) || cut < CONTAINER_HEADER_LEN,
                    "a cut at frame boundary {cut} must replay cleanly"
                );
            }
        }
    }
}

#[test]
fn frame_corpus_respects_the_frame_limit_before_allocating() {
    let frames = corpus_frames();
    let bytes = container::write_corpus(&frames, ProbEncoding::F64, 1, false).unwrap();
    let mut reader = container::CorpusReader::open(bytes.as_slice())
        .unwrap()
        .with_frame_limit(64);
    assert!(matches!(
        reader.next_frame(),
        Err(ContainerError::ChunkTooLarge { limit: 64, .. })
    ));
}

proptest! {
    /// Any truncation or single-byte corruption of a frame corpus is total:
    /// a typed error or a clean prefix replay, never a panic.
    #[test]
    fn prop_frame_corpus_damage_is_total(
        cut in any::<u64>(),
        position in any::<u64>(),
        flip in 1u8..=255,
        compress in any::<bool>()
    ) {
        let frames = corpus_frames();
        let bytes = container::write_corpus(&frames, ProbEncoding::U16, 3, compress).unwrap();
        let cut = (cut % (bytes.len() as u64 + 1)) as usize;
        let _ = container::read_corpus(&bytes[..cut]);
        let position = (position % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[position] ^= flip;
        let _ = container::read_corpus(&corrupt);
    }
}

#[test]
fn checkpoint_and_record_containers_roundtrip_and_detect_corruption() {
    let json = r#"{"scaler":{"mean":[0.1,0.2]},"classifier":"logistic"}"#;
    for compress in [false, true] {
        let bytes = container::write_checkpoint(json, compress).unwrap();
        assert!(container::is_container(&bytes));
        assert_eq!(container::read_checkpoint(&bytes).unwrap(), json);
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            container::read_checkpoint(&corrupt),
            Err(ContainerError::ChecksumMismatch { .. }
                | ContainerError::Truncated { .. }
                | ContainerError::InvalidCompression { .. })
        ));
    }

    let records: Vec<String> = (0..5)
        .map(|i| format!("{{\"frame\":{i},\"verdicts\":[{i}.5, {}]}}", i * 7))
        .collect();
    for compress in [false, true] {
        let bytes = container::write_records(&records, compress).unwrap();
        assert_eq!(container::read_records(&bytes).unwrap(), records);
        for cut in 0..bytes.len() {
            // Record corpora are fixed containers: any truncation that cuts
            // a chunk errors; a cut at a chunk boundary yields a prefix.
            if let Ok(prefix) = container::read_records(&bytes[..cut]) {
                assert!(prefix.len() < records.len());
            }
        }
    }
    // Empty corpora are valid and empty.
    let empty = container::write_records(Vec::<String>::new(), false).unwrap();
    assert_eq!(
        container::read_records(&empty).unwrap(),
        Vec::<String>::new()
    );
}

#[test]
fn container_errors_render_useful_messages() {
    let payload = sample_payload(3, 3, 2, ProbEncoding::F64);
    let bytes = container::write_grid(&payload, 2, false).unwrap();
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 1;
    let err = container::read_grid(&corrupt).unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("checksum"),
        "checksum failures must say so: {message}"
    );
    assert!(
        container::read_grid(&bytes[..5])
            .unwrap_err()
            .to_string()
            .contains("truncated"),
        "truncation must say so"
    );
}
