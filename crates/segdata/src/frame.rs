//! Frames: one image worth of ground truth and prediction.

use crate::error::DataError;
use crate::labelmap::LabelMap;
use crate::probmap::ProbMap;
use serde::{Deserialize, Serialize};

/// Identifier of a frame inside a dataset or sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameId {
    /// Index of the sequence the frame belongs to (0 for single-image datasets).
    pub sequence: usize,
    /// Index of the frame within its sequence.
    pub index: usize,
}

impl FrameId {
    /// Creates a frame id.
    pub const fn new(sequence: usize, index: usize) -> Self {
        Self { sequence, index }
    }
}

impl std::fmt::Display for FrameId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seq{:03}/frame{:05}", self.sequence, self.index)
    }
}

/// One image worth of data: the predicted softmax field plus, when the frame
/// is labelled, the ground-truth class map.
///
/// The ground truth is optional because the KITTI-style video experiments of
/// the paper only have sparse labels; unlabelled frames still carry
/// predictions that can be tracked and used as pseudo ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Identifier within its dataset/sequence.
    pub id: FrameId,
    /// Ground-truth label map, if the frame is annotated.
    pub ground_truth: Option<LabelMap>,
    /// The segmentation network's softmax output for this frame.
    pub prediction: ProbMap,
}

impl Frame {
    /// Creates a labelled frame.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::FrameShapeMismatch`] if ground truth and
    /// prediction shapes differ.
    pub fn labeled(
        id: FrameId,
        ground_truth: LabelMap,
        prediction: ProbMap,
    ) -> Result<Self, DataError> {
        if ground_truth.shape() != prediction.shape() {
            return Err(DataError::FrameShapeMismatch {
                ground_truth: ground_truth.shape(),
                prediction: prediction.shape(),
            });
        }
        Ok(Self {
            id,
            ground_truth: Some(ground_truth),
            prediction,
        })
    }

    /// Creates an unlabelled frame (prediction only).
    pub fn unlabeled(id: FrameId, prediction: ProbMap) -> Self {
        Self {
            id,
            ground_truth: None,
            prediction,
        }
    }

    /// Whether the frame carries ground truth.
    pub fn is_labeled(&self) -> bool {
        self.ground_truth.is_some()
    }

    /// Shape of the frame as `(width, height)`.
    pub fn shape(&self) -> (usize, usize) {
        self.prediction.shape()
    }

    /// The Bayes/MAP predicted label map of this frame.
    pub fn predicted_labels(&self) -> LabelMap {
        self.prediction.argmax_map()
    }

    /// Replaces the ground truth by a pseudo label map (e.g. the prediction
    /// of a stronger reference network), keeping the original prediction.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::FrameShapeMismatch`] if the shapes differ.
    pub fn with_pseudo_ground_truth(mut self, pseudo: LabelMap) -> Result<Self, DataError> {
        if pseudo.shape() != self.prediction.shape() {
            return Err(DataError::FrameShapeMismatch {
                ground_truth: pseudo.shape(),
                prediction: self.prediction.shape(),
            });
        }
        self.ground_truth = Some(pseudo);
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SemanticClass;

    fn small_prediction() -> ProbMap {
        ProbMap::uniform(4, 3, 19)
    }

    #[test]
    fn labeled_frame_requires_matching_shapes() {
        let gt = LabelMap::filled(4, 3, SemanticClass::Road);
        let frame = Frame::labeled(FrameId::new(0, 0), gt, small_prediction()).unwrap();
        assert!(frame.is_labeled());
        assert_eq!(frame.shape(), (4, 3));

        let bad_gt = LabelMap::filled(2, 2, SemanticClass::Road);
        assert!(Frame::labeled(FrameId::new(0, 1), bad_gt, small_prediction()).is_err());
    }

    #[test]
    fn unlabeled_frame_has_no_ground_truth() {
        let frame = Frame::unlabeled(FrameId::new(1, 5), small_prediction());
        assert!(!frame.is_labeled());
        assert_eq!(frame.id.to_string(), "seq001/frame00005");
    }

    #[test]
    fn pseudo_ground_truth_can_be_attached() {
        let frame = Frame::unlabeled(FrameId::new(0, 0), small_prediction());
        let pseudo = LabelMap::filled(4, 3, SemanticClass::Car);
        let frame = frame.with_pseudo_ground_truth(pseudo).unwrap();
        assert!(frame.is_labeled());
        assert_eq!(
            frame.ground_truth.as_ref().unwrap().class_at(0, 0),
            SemanticClass::Car
        );

        let frame2 = Frame::unlabeled(FrameId::new(0, 1), small_prediction());
        let wrong = LabelMap::filled(9, 9, SemanticClass::Car);
        assert!(frame2.with_pseudo_ground_truth(wrong).is_err());
    }

    #[test]
    fn predicted_labels_come_from_argmax() {
        let labels = LabelMap::filled(3, 3, SemanticClass::Sky);
        let probs = ProbMap::one_hot(&labels, 19);
        let frame = Frame::labeled(FrameId::new(0, 0), labels, probs).unwrap();
        assert_eq!(frame.predicted_labels().class_at(1, 1), SemanticClass::Sky);
    }
}
