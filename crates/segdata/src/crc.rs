//! CRC-32 (IEEE 802.3) — the one checksum implementation of the workspace.
//!
//! Both the binary wire protocol (`metaseg_serve::wire`) and the chunked
//! container format ([`crate::container`]) checksum their payloads with this
//! function; it lives in the data crate so the two byte formats can never
//! drift apart on polynomial, reflection or initial value.

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup table, built at
/// compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice — the chunk/payload checksum shared by the
/// wire protocol and the container format.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let bytes = vec![0xA5u8; 64];
        let reference = crc32(&bytes);
        for position in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[position] ^= 0x10;
            assert_ne!(crc32(&corrupt), reference);
        }
    }
}
