//! Semantic class catalogue.
//!
//! The reproduction works on a Cityscapes-like semantic space: 19 evaluation
//! classes plus a `Void` label for unlabelled pixels. The catalogue also
//! records an approximate pixel frequency for each class (used by the scene
//! generator to reproduce class imbalance) and a display colour (used by the
//! figure renderers).

use crate::error::DataError;
use metaseg_imgproc::Color;
use serde::{Deserialize, Serialize};

/// Semantic classes of the Cityscapes-like label space.
///
/// The numeric discriminants are the class ids stored in label maps and used
/// as channel indices of [`crate::ProbMap`]s. `Void` marks unlabelled pixels
/// and is excluded from evaluation, mirroring the white regions of Fig. 1 in
/// the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u16)]
pub enum SemanticClass {
    /// Drivable road surface.
    Road = 0,
    /// Sidewalk / pavement.
    Sidewalk = 1,
    /// Building facades.
    Building = 2,
    /// Free-standing walls.
    Wall = 3,
    /// Fences.
    Fence = 4,
    /// Poles (lamp posts, sign posts).
    Pole = 5,
    /// Traffic lights.
    TrafficLight = 6,
    /// Traffic signs.
    TrafficSign = 7,
    /// Vegetation (trees, hedges).
    Vegetation = 8,
    /// Terrain (grass, soil).
    Terrain = 9,
    /// Sky.
    Sky = 10,
    /// Humans: pedestrians and riders (the paper's rare class of interest).
    Human = 11,
    /// Riders on two-wheelers (kept separate like Cityscapes' `rider`).
    Rider = 12,
    /// Cars.
    Car = 13,
    /// Trucks.
    Truck = 14,
    /// Buses.
    Bus = 15,
    /// Trains / trams.
    Train = 16,
    /// Motorcycles.
    Motorcycle = 17,
    /// Bicycles.
    Bicycle = 18,
    /// Unlabelled / ignore region (excluded from evaluation).
    Void = 19,
}

impl SemanticClass {
    /// All classes including [`SemanticClass::Void`], ordered by id.
    pub const ALL: [SemanticClass; 20] = [
        SemanticClass::Road,
        SemanticClass::Sidewalk,
        SemanticClass::Building,
        SemanticClass::Wall,
        SemanticClass::Fence,
        SemanticClass::Pole,
        SemanticClass::TrafficLight,
        SemanticClass::TrafficSign,
        SemanticClass::Vegetation,
        SemanticClass::Terrain,
        SemanticClass::Sky,
        SemanticClass::Human,
        SemanticClass::Rider,
        SemanticClass::Car,
        SemanticClass::Truck,
        SemanticClass::Bus,
        SemanticClass::Train,
        SemanticClass::Motorcycle,
        SemanticClass::Bicycle,
        SemanticClass::Void,
    ];

    /// Numeric class id (label-map value and softmax channel index).
    pub const fn id(self) -> u16 {
        self as u16
    }

    /// Converts a numeric id back to a class.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownClassId`] for ids `>= 20`.
    pub fn from_id(id: u16) -> Result<Self, DataError> {
        SemanticClass::ALL
            .get(id as usize)
            .copied()
            .ok_or(DataError::UnknownClassId(id))
    }

    /// Human readable lowercase name, matching Cityscapes naming.
    pub const fn name(self) -> &'static str {
        match self {
            SemanticClass::Road => "road",
            SemanticClass::Sidewalk => "sidewalk",
            SemanticClass::Building => "building",
            SemanticClass::Wall => "wall",
            SemanticClass::Fence => "fence",
            SemanticClass::Pole => "pole",
            SemanticClass::TrafficLight => "traffic light",
            SemanticClass::TrafficSign => "traffic sign",
            SemanticClass::Vegetation => "vegetation",
            SemanticClass::Terrain => "terrain",
            SemanticClass::Sky => "sky",
            SemanticClass::Human => "person",
            SemanticClass::Rider => "rider",
            SemanticClass::Car => "car",
            SemanticClass::Truck => "truck",
            SemanticClass::Bus => "bus",
            SemanticClass::Train => "train",
            SemanticClass::Motorcycle => "motorcycle",
            SemanticClass::Bicycle => "bicycle",
            SemanticClass::Void => "void",
        }
    }

    /// Whether the class takes part in evaluation (everything except void).
    pub const fn is_evaluated(self) -> bool {
        !matches!(self, SemanticClass::Void)
    }
}

impl std::fmt::Display for SemanticClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class metadata carried by the catalogue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassInfo {
    /// The class this entry describes.
    pub class: SemanticClass,
    /// Approximate fraction of annotated pixels belonging to the class in a
    /// typical street-scene dataset; the scene generator reproduces this
    /// imbalance, which is what Section IV of the paper exploits.
    pub typical_frequency: f64,
    /// Display colour used by the figure renderers (Cityscapes palette).
    pub color: Color,
    /// Whether instances of this class are small, rare objects whose missed
    /// detection is safety critical (humans, riders, two-wheelers).
    pub rare_critical: bool,
}

/// The semantic space: an ordered set of classes with metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassCatalog {
    classes: Vec<ClassInfo>,
}

impl ClassCatalog {
    /// Builds a catalogue from an explicit class list — the constructor for
    /// non-Cityscapes semantic spaces (a subset catalogue for a restricted
    /// deployment, a custom dataset, a test fixture).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty, contains a duplicate class, or contains
    /// no evaluated (non-void) class.
    pub fn new(classes: Vec<ClassInfo>) -> Self {
        assert!(!classes.is_empty(), "a catalogue needs at least one class");
        for (i, info) in classes.iter().enumerate() {
            assert!(
                !classes[..i].iter().any(|c| c.class == info.class),
                "duplicate class {} in catalogue",
                info.class
            );
        }
        assert!(
            classes.iter().any(|c| c.class.is_evaluated()),
            "a catalogue needs at least one evaluated class"
        );
        Self { classes }
    }

    /// Number of softmax channels a probability map over this catalogue must
    /// carry: channel indices are class ids, so this is the largest
    /// evaluated class id plus one (void never has a channel). For the
    /// Cityscapes-like catalogue this is 19; a sparse custom catalogue may
    /// need more channels than it has classes.
    pub fn channel_count(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| c.class.is_evaluated())
            .map(|c| c.class.id() as usize + 1)
            .max()
            .expect("catalogues always contain an evaluated class")
    }

    /// The Cityscapes-like catalogue used throughout the reproduction.
    pub fn cityscapes_like() -> Self {
        use SemanticClass::*;
        let entry = |class: SemanticClass, freq: f64, color: (u8, u8, u8), rare: bool| ClassInfo {
            class,
            typical_frequency: freq,
            color: Color::new(color.0, color.1, color.2),
            rare_critical: rare,
        };
        // Frequencies roughly follow the Cityscapes pixel distribution
        // (road/building/vegetation dominate, humans are ~1.2%).
        let classes = vec![
            entry(Road, 0.326, (128, 64, 128), false),
            entry(Sidewalk, 0.054, (244, 35, 232), false),
            entry(Building, 0.202, (70, 70, 70), false),
            entry(Wall, 0.006, (102, 102, 156), false),
            entry(Fence, 0.008, (190, 153, 153), false),
            entry(Pole, 0.011, (153, 153, 153), false),
            entry(TrafficLight, 0.002, (250, 170, 30), false),
            entry(TrafficSign, 0.005, (220, 220, 0), false),
            entry(Vegetation, 0.141, (107, 142, 35), false),
            entry(Terrain, 0.010, (152, 251, 152), false),
            entry(Sky, 0.036, (70, 130, 180), false),
            entry(Human, 0.012, (220, 20, 60), true),
            entry(Rider, 0.002, (255, 0, 0), true),
            entry(Car, 0.062, (0, 0, 142), false),
            entry(Truck, 0.002, (0, 0, 70), false),
            entry(Bus, 0.002, (0, 60, 100), false),
            entry(Train, 0.002, (0, 80, 100), false),
            entry(Motorcycle, 0.001, (0, 0, 230), true),
            entry(Bicycle, 0.004, (119, 11, 32), true),
            entry(Void, 0.112, (0, 0, 0), false),
        ];
        Self { classes }
    }

    /// Number of classes that carry a softmax channel (excludes void).
    pub fn evaluated_class_count(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| c.class.is_evaluated())
            .count()
    }

    /// Total number of classes including void.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Whether the catalogue contains the given class.
    pub fn contains(&self, class: SemanticClass) -> bool {
        self.classes.iter().any(|c| c.class == class)
    }

    /// Metadata entry for a class.
    pub fn info(&self, class: SemanticClass) -> Option<&ClassInfo> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Display colour for a class (black for unknown classes).
    pub fn color(&self, class: SemanticClass) -> Color {
        self.info(class).map(|i| i.color).unwrap_or(Color::BLACK)
    }

    /// Iterator over the evaluated (non-void) classes in id order.
    pub fn evaluated_classes(&self) -> impl Iterator<Item = SemanticClass> + '_ {
        self.classes
            .iter()
            .map(|c| c.class)
            .filter(|c| c.is_evaluated())
    }

    /// Iterator over all classes including void, in id order.
    pub fn all_classes(&self) -> impl Iterator<Item = SemanticClass> + '_ {
        self.classes.iter().map(|c| c.class)
    }

    /// Typical pixel frequency of the class (0 for unknown classes).
    pub fn typical_frequency(&self, class: SemanticClass) -> f64 {
        self.info(class).map(|i| i.typical_frequency).unwrap_or(0.0)
    }

    /// Classes flagged as rare and safety critical (the false-negative focus).
    pub fn rare_critical_classes(&self) -> Vec<SemanticClass> {
        self.classes
            .iter()
            .filter(|c| c.rare_critical)
            .map(|c| c.class)
            .collect()
    }
}

impl Default for ClassCatalog {
    fn default() -> Self {
        Self::cityscapes_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ids_roundtrip() {
        for class in SemanticClass::ALL {
            assert_eq!(SemanticClass::from_id(class.id()).unwrap(), class);
        }
        assert!(SemanticClass::from_id(20).is_err());
        assert!(SemanticClass::from_id(999).is_err());
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        for (i, class) in SemanticClass::ALL.iter().enumerate() {
            assert_eq!(class.id() as usize, i);
        }
    }

    #[test]
    fn catalog_has_twenty_classes_nineteen_evaluated() {
        let cat = ClassCatalog::cityscapes_like();
        assert_eq!(cat.class_count(), 20);
        assert_eq!(cat.evaluated_class_count(), 19);
        assert!(cat.contains(SemanticClass::Void));
        assert!(!SemanticClass::Void.is_evaluated());
    }

    #[test]
    fn custom_catalogs_derive_their_channel_count() {
        let entry = |class: SemanticClass, freq: f64| ClassInfo {
            class,
            typical_frequency: freq,
            color: Color::BLACK,
            rare_critical: false,
        };
        assert_eq!(ClassCatalog::cityscapes_like().channel_count(), 19);
        // A sparse catalogue needs channels up to its largest class id, not
        // just as many channels as it has classes.
        let sparse = ClassCatalog::new(vec![
            entry(SemanticClass::Road, 0.5),
            entry(SemanticClass::Sky, 0.3),
            entry(SemanticClass::Human, 0.2),
        ]);
        assert_eq!(
            sparse.channel_count(),
            SemanticClass::Human.id() as usize + 1
        );
        assert_eq!(sparse.class_count(), 3);
        assert_eq!(sparse.evaluated_class_count(), 3);
        // Void contributes no channel.
        let with_void = ClassCatalog::new(vec![
            entry(SemanticClass::Road, 0.5),
            entry(SemanticClass::Void, 0.5),
        ]);
        assert_eq!(with_void.channel_count(), 1);
    }

    #[test]
    #[should_panic]
    fn duplicate_classes_are_rejected() {
        let entry = |class: SemanticClass| ClassInfo {
            class,
            typical_frequency: 0.5,
            color: Color::BLACK,
            rare_critical: false,
        };
        let _ = ClassCatalog::new(vec![entry(SemanticClass::Road), entry(SemanticClass::Road)]);
    }

    #[test]
    fn frequencies_are_a_rough_distribution() {
        let cat = ClassCatalog::cityscapes_like();
        let sum: f64 = cat.all_classes().map(|c| cat.typical_frequency(c)).sum();
        assert!((sum - 1.0).abs() < 0.05, "frequencies sum to {sum}");
        // Humans are rare compared to road.
        assert!(
            cat.typical_frequency(SemanticClass::Human)
                < cat.typical_frequency(SemanticClass::Road) / 10.0
        );
    }

    #[test]
    fn rare_critical_includes_human() {
        let cat = ClassCatalog::cityscapes_like();
        let rare = cat.rare_critical_classes();
        assert!(rare.contains(&SemanticClass::Human));
        assert!(!rare.contains(&SemanticClass::Road));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SemanticClass::Human.to_string(), "person");
        assert_eq!(SemanticClass::TrafficSign.to_string(), "traffic sign");
    }

    #[test]
    fn colors_are_distinct_for_major_classes() {
        let cat = ClassCatalog::cityscapes_like();
        let road = cat.color(SemanticClass::Road);
        let sky = cat.color(SemanticClass::Sky);
        let human = cat.color(SemanticClass::Human);
        assert_ne!(road, sky);
        assert_ne!(road, human);
        assert_ne!(sky, human);
    }

    proptest! {
        #[test]
        fn prop_from_id_errors_above_range(id in 20u16..2000) {
            prop_assert!(SemanticClass::from_id(id).is_err());
        }

        #[test]
        fn prop_info_exists_for_all(idx in 0usize..20) {
            let cat = ClassCatalog::cityscapes_like();
            let class = SemanticClass::ALL[idx];
            prop_assert!(cat.info(class).is_some());
            prop_assert!(cat.typical_frequency(class) >= 0.0);
        }
    }
}
