//! # metaseg-data
//!
//! Data model for semantic segmentation shared by every other crate of the
//! MetaSeg reproduction:
//!
//! * [`SemanticClass`] / [`ClassCatalog`] — a Cityscapes-like semantic space
//!   of 19 evaluation classes plus a void/ignore label,
//! * [`LabelMap`] — a dense per-pixel class map (ground truth or prediction),
//! * [`ProbMap`] — a dense per-pixel softmax field `f_z(y|x, w)`,
//! * [`Frame`] — one image worth of data: ground truth (optional) plus the
//!   predicted softmax field,
//! * [`Dataset`] and [`Sequence`] — collections of frames and ordered video
//!   sequences.
//!
//! ```
//! use metaseg_data::{ClassCatalog, LabelMap, SemanticClass};
//!
//! let catalog = ClassCatalog::cityscapes_like();
//! assert!(catalog.contains(SemanticClass::Human));
//! let map = LabelMap::filled(8, 4, SemanticClass::Road);
//! assert_eq!(map.class_pixel_count(SemanticClass::Road), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
pub mod container;
mod crc;
mod dataset;
mod error;
mod frame;
mod labelmap;
mod probmap;

pub use catalog::{ClassCatalog, ClassInfo, SemanticClass};
pub use container::{ContainerError, ContainerKind, CorpusFrame, CorpusReader, CorpusWriter};
pub use crc::crc32;
pub use dataset::{Dataset, Sequence, SplitRatios};
pub use error::DataError;
pub use frame::{Frame, FrameId};
pub use labelmap::LabelMap;
pub use probmap::{
    fast_ln_positive_f32, DistributionScan, DistributionScanF32, ProbEncoding, ProbMap, ProbPayload,
};
