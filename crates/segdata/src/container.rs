//! The chunked grid container — one byte format for golden corpora,
//! checkpoints and on-disk frame corpora.
//!
//! Three subsystems used to hand-roll their own byte layouts: the golden
//! oracle (JSONL), `MetaPredictor` checkpoints (bare JSON) and the binary
//! wire payloads. This module unifies their on-disk form: a versioned,
//! chunked, optionally-compressed container whose payload chunks carry a
//! CRC-32 each ([`crate::crc32`], shared with the wire protocol), so every
//! consumer gets the same corruption detection, the same typed errors and —
//! for grid payloads — band-parallel decoding for free.
//!
//! ## Container layout
//!
//! Every container starts with a fixed 8-byte header; all multi-byte
//! integers are little-endian:
//!
//! ```text
//! offset len  field
//! 0      4    magic      "MSGC"
//! 4      1    version    1
//! 5      1    kind       0 = grid | 1 = checkpoint | 2 = frame corpus |
//!                        3 = record corpus        (ContainerKind tag)
//! 6      1    flags      bit 0: chunks may be PackBits-compressed
//! 7      1    reserved   must be 0
//! ```
//!
//! The body is a sequence of chunks, each a 16-byte chunk header followed by
//! the stored bytes:
//!
//! ```text
//! offset len  field
//! 0      4    tag        band / record index, or a marker tag (TAG_*)
//! 4      4    raw_len    chunk length after decompression
//! 8      4    stored_len bytes that follow; < raw_len means compressed
//! 12     4    checksum   CRC-32 (IEEE) of the stored bytes
//! 16     …    stored bytes
//! ```
//!
//! A *grid* container holds one [`ProbPayload`]: a 16-byte grid descriptor
//! (width, height, channels as `u32`; encoding tag, band count, reserved
//! `u16`), then one chunk per horizontal band — the same even row partition
//! as the extraction kernel's band-parallel scratch — so bands verify and
//! decompress on independent threads:
//!
//! ```
//! use metaseg_data::container::{self, CHUNK_HEADER_LEN, CONTAINER_HEADER_LEN};
//! use metaseg_data::{crc32, ProbEncoding, ProbMap, ProbPayload};
//!
//! let map = ProbMap::uniform(4, 2, 3);
//! let payload = ProbPayload::encode(&map, ProbEncoding::F64);
//! let bytes = container::write_grid(&payload, 2, false).unwrap();
//!
//! // 8-byte file header: magic, version 1, kind 0 (grid), flags, reserved…
//! assert_eq!(&bytes[0..4], b"MSGC");
//! assert_eq!(&bytes[4..8], &[1, 0, 0, 0]);
//! // …16-byte grid descriptor: shape, encoding tag, band count…
//! assert_eq!(&bytes[8..12], &4u32.to_le_bytes());
//! assert_eq!(&bytes[12..16], &2u32.to_le_bytes());
//! assert_eq!(&bytes[16..20], &3u32.to_le_bytes());
//! assert_eq!(&bytes[20..24], &[ProbEncoding::F64.tag(), 2, 0, 0]);
//! // …then one chunk per band. Band 0 covers one of the two rows: tag 0,
//! // 4 * 3 f64 values stored raw (stored_len == raw_len), CRC-32 last.
//! let row_bytes = 4 * 3 * 8u32;
//! assert_eq!(&bytes[24..28], &0u32.to_le_bytes());
//! assert_eq!(&bytes[28..32], &row_bytes.to_le_bytes());
//! assert_eq!(&bytes[32..36], &row_bytes.to_le_bytes());
//! let body_start = CONTAINER_HEADER_LEN + 16 + CHUNK_HEADER_LEN;
//! let body = &bytes[body_start..body_start + row_bytes as usize];
//! assert_eq!(&bytes[36..40], &crc32(body).to_le_bytes());
//! // …and the whole container decodes back bit-identically.
//! assert_eq!(container::read_grid(&bytes).unwrap(), payload);
//! ```
//!
//! A *frame corpus* is a stream of frames, each a 32-byte frame descriptor
//! chunk ([`TAG_FRAME`]: sequence and index as `u64`, the grid descriptor
//! fields, a flag for attached ground truth), the band chunks of the
//! prediction payload, and optionally one [`TAG_GROUND_TRUTH`] chunk of
//! `u16` class ids. End of stream is only valid at a frame boundary, so a
//! torn file is a typed [`ContainerError::Truncated`], never a short read. A
//! *checkpoint* wraps a predictor's canonical JSON in a single checksummed
//! [`TAG_CHECKPOINT`] chunk; a *record corpus* holds one chunk per oracle
//! record (tag = record index). Decoding is *total*: no input, however
//! corrupt, panics, and every header length is bounded before anything is
//! allocated from untrusted bytes.

use crate::crc::crc32;
use crate::error::DataError;
use crate::frame::{Frame, FrameId};
use crate::labelmap::LabelMap;
use crate::probmap::{ProbEncoding, ProbPayload};
use metaseg_imgproc::Grid;
use std::fmt;
use std::io::{Read, Write};

/// First four bytes of every container.
pub const CONTAINER_MAGIC: [u8; 4] = *b"MSGC";

/// Container format version written by (and required by) this build.
pub const CONTAINER_VERSION: u8 = 1;

/// Size of the fixed container header in bytes.
pub const CONTAINER_HEADER_LEN: usize = 8;

/// Size of a chunk header in bytes.
pub const CHUNK_HEADER_LEN: usize = 16;

/// Size of the grid descriptor that follows a grid container's header.
pub const GRID_DESC_LEN: usize = 16;

/// Size of a frame descriptor chunk's decompressed body.
pub const FRAME_DESC_LEN: usize = 32;

/// Chunk tag of a frame descriptor in a frame corpus.
pub const TAG_FRAME: u32 = 0xFFFF_FF01;

/// Chunk tag of a ground-truth label chunk in a frame corpus.
pub const TAG_GROUND_TRUTH: u32 = 0xFFFF_FF02;

/// Chunk tag of the single JSON chunk in a checkpoint container.
pub const TAG_CHECKPOINT: u32 = 0xFFFF_FF03;

/// Default cap on a decoded grid payload (1 GiB): headers declaring more are
/// rejected before any allocation.
pub const MAX_GRID_BYTES: u64 = 1 << 30;

/// Default cap on a decompressed text chunk (checkpoint JSON, oracle
/// record): 64 MiB.
pub const MAX_TEXT_CHUNK_BYTES: u64 = 64 << 20;

/// Flag bit: chunks of this container may be PackBits-compressed.
const FLAG_COMPRESSED: u8 = 0b0000_0001;

/// Flag bit in a frame descriptor: a ground-truth chunk follows the bands.
const FRAME_FLAG_GROUND_TRUTH: u8 = 0b0000_0001;

/// What a container holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// One probability-field payload, split into band chunks.
    Grid,
    /// One serialized `MetaPredictor` (canonical JSON in a single chunk).
    Checkpoint,
    /// A stream of frames (predictions plus optional ground truth).
    FrameCorpus,
    /// A sequence of text records (the golden oracle's corpus form).
    RecordCorpus,
}

impl ContainerKind {
    /// The one-byte header tag of the kind.
    pub fn tag(self) -> u8 {
        match self {
            ContainerKind::Grid => 0,
            ContainerKind::Checkpoint => 1,
            ContainerKind::FrameCorpus => 2,
            ContainerKind::RecordCorpus => 3,
        }
    }

    /// Parses a header tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => ContainerKind::Grid,
            1 => ContainerKind::Checkpoint,
            2 => ContainerKind::FrameCorpus,
            3 => ContainerKind::RecordCorpus,
            _ => return None,
        })
    }

    /// Human-readable name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            ContainerKind::Grid => "grid",
            ContainerKind::Checkpoint => "checkpoint",
            ContainerKind::FrameCorpus => "frame-corpus",
            ContainerKind::RecordCorpus => "record-corpus",
        }
    }
}

/// A container that could not be decoded. Every variant is typed so callers
/// can distinguish truncation from corruption from version skew.
#[derive(Debug, Clone, PartialEq)]
pub enum ContainerError {
    /// An underlying I/O operation failed (streaming readers/writers only).
    Io(std::io::ErrorKind),
    /// The input ended before a complete header, descriptor or chunk.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it found.
        found: usize,
    },
    /// The first four bytes are not [`CONTAINER_MAGIC`].
    BadMagic([u8; 4]),
    /// The header declares a format version this build does not speak.
    UnsupportedVersion(u8),
    /// The header's kind tag is not a known [`ContainerKind`].
    UnknownKind(u8),
    /// The container is well-formed but of a different kind than asked for.
    WrongKind {
        /// Kind the caller required.
        expected: ContainerKind,
        /// Kind the header declares.
        found: ContainerKind,
    },
    /// The header sets flag bits this build does not know.
    UnknownFlags(u8),
    /// A reserved header or descriptor field is non-zero.
    NonZeroReserved(u32),
    /// A descriptor's encoding tag is not a known [`ProbEncoding`].
    UnknownEncoding(u8),
    /// A descriptor declares a band count of zero or more bands than rows.
    InvalidBandCount {
        /// Declared band count.
        bands: u8,
        /// Field height in rows.
        height: usize,
    },
    /// A chunk carries a different tag than the format requires here.
    UnexpectedTag {
        /// Tag the format requires at this position.
        expected: u32,
        /// Tag the chunk header declares.
        found: u32,
    },
    /// A declared length exceeds the receiver's cap; nothing was allocated.
    ChunkTooLarge {
        /// Length the header declares, in bytes.
        declared: u64,
        /// The receiver's cap in bytes.
        limit: u64,
    },
    /// A chunk's declared decompressed length contradicts the format (e.g. a
    /// band chunk whose `raw_len` is not that band's byte count).
    ChunkLengthMismatch {
        /// Tag of the offending chunk.
        tag: u32,
        /// Length the format requires.
        expected: usize,
        /// Length the chunk header declares.
        found: usize,
    },
    /// A chunk's stored bytes do not hash to the declared CRC-32.
    ChecksumMismatch {
        /// Tag of the offending chunk.
        tag: u32,
        /// Checksum the chunk header declares.
        declared: u32,
        /// Checksum computed over the stored bytes.
        computed: u32,
    },
    /// A chunk claims compression the header forbids, its compressed stream
    /// is malformed, or it does not decompress to exactly `raw_len` bytes.
    InvalidCompression {
        /// Tag of the offending chunk.
        tag: u32,
    },
    /// Bytes remain after the last chunk of a fixed-size container.
    TrailingBytes(usize),
    /// A text chunk (checkpoint JSON, oracle record) is not valid UTF-8.
    NotUtf8 {
        /// Tag of the offending chunk.
        tag: u32,
    },
    /// A stored integer does not fit the platform's `usize`.
    FieldOverflow(&'static str),
    /// A decoded payload or label map failed data-model validation.
    Data(DataError),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::Io(kind) => write!(f, "container i/o failed: {kind}"),
            ContainerError::Truncated { needed, found } => {
                write!(f, "container truncated: needed {needed} bytes, got {found}")
            }
            ContainerError::BadMagic(magic) => {
                write!(f, "not a container: magic bytes {magic:02x?}")
            }
            ContainerError::UnsupportedVersion(version) => write!(
                f,
                "unsupported container version {version} (this build speaks {CONTAINER_VERSION})"
            ),
            ContainerError::UnknownKind(tag) => write!(f, "unknown container kind tag {tag}"),
            ContainerError::WrongKind { expected, found } => write!(
                f,
                "expected a {} container, found a {} container",
                expected.name(),
                found.name()
            ),
            ContainerError::UnknownFlags(flags) => {
                write!(f, "unknown container flag bits {flags:#010b}")
            }
            ContainerError::NonZeroReserved(value) => {
                write!(f, "reserved container field must be 0, got {value:#x}")
            }
            ContainerError::UnknownEncoding(tag) => {
                write!(f, "unknown payload encoding tag {tag}")
            }
            ContainerError::InvalidBandCount { bands, height } => write!(
                f,
                "descriptor declares {bands} bands for a {height}-row field"
            ),
            ContainerError::UnexpectedTag { expected, found } => write!(
                f,
                "chunk tag {found:#010x} where the format requires {expected:#010x}"
            ),
            ContainerError::ChunkTooLarge { declared, limit } => write!(
                f,
                "declared chunk of {declared} bytes exceeds the receiver's cap of {limit}"
            ),
            ContainerError::ChunkLengthMismatch {
                tag,
                expected,
                found,
            } => write!(
                f,
                "chunk {tag:#010x} declares {found} decompressed bytes, the format requires \
                 {expected}"
            ),
            ContainerError::ChecksumMismatch {
                tag,
                declared,
                computed,
            } => write!(
                f,
                "chunk {tag:#010x} checksum mismatch: header declares {declared:#010x}, stored \
                 bytes hash to {computed:#010x}"
            ),
            ContainerError::InvalidCompression { tag } => {
                write!(f, "chunk {tag:#010x} has a malformed compressed stream")
            }
            ContainerError::TrailingBytes(count) => {
                write!(f, "{count} trailing bytes after the final chunk")
            }
            ContainerError::NotUtf8 { tag } => {
                write!(f, "text chunk {tag:#010x} is not valid UTF-8")
            }
            ContainerError::FieldOverflow(field) => {
                write!(f, "stored {field} does not fit this platform's usize")
            }
            ContainerError::Data(e) => write!(f, "container payload invalid: {e}"),
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for ContainerError {
    fn from(value: DataError) -> Self {
        ContainerError::Data(value)
    }
}

/// Whether `bytes` start like a container (magic sniff only) — the cheap
/// routing test loaders use to pick between the container and a readable
/// fallback format such as bare JSON.
pub fn is_container(bytes: &[u8]) -> bool {
    bytes.len() >= CONTAINER_MAGIC.len() && bytes[..CONTAINER_MAGIC.len()] == CONTAINER_MAGIC
}

/// Rows `[start, end)` of band `band` in the even `bands`-way horizontal
/// partition of `height` rows — the same split the band-parallel extraction
/// scratch uses, so corpus chunks line up with decode parallelism.
fn band_rows(band: usize, bands: usize, height: usize) -> (usize, usize) {
    (band * height / bands, (band + 1) * height / bands)
}

/// Byte length of band `band` of a payload with the given shape.
fn band_byte_len(
    band: usize,
    bands: usize,
    height: usize,
    width: usize,
    channels: usize,
    encoding: ProbEncoding,
) -> usize {
    let (start, end) = band_rows(band, bands, height);
    (end - start) * width * channels * encoding.bytes_per_value()
}

// ---------------------------------------------------------------------------
// PackBits compression
// ---------------------------------------------------------------------------

/// Compresses `src` with PackBits-style run-length encoding: a control byte
/// `c < 128` copies `c + 1` literal bytes, `c > 128` repeats the next byte
/// `257 - c` times; `128` is never emitted.
fn compress_packbits(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 2);
    let mut i = 0;
    while i < src.len() {
        let mut run = 1;
        while run < 128 && i + run < src.len() && src[i + run] == src[i] {
            run += 1;
        }
        if run >= 3 {
            out.push((257 - run) as u8);
            out.push(src[i]);
            i += run;
        } else {
            let start = i;
            let mut len = run;
            i += run;
            while len < 128 && i < src.len() {
                let mut next_run = 1;
                while next_run < 3 && i + next_run < src.len() && src[i + next_run] == src[i] {
                    next_run += 1;
                }
                if next_run >= 3 {
                    break;
                }
                let take = next_run.min(128 - len);
                len += take;
                i += take;
            }
            out.push((len - 1) as u8);
            out.extend_from_slice(&src[start..start + len]);
        }
    }
    out
}

/// Decompresses a PackBits stream into `out`, which must be filled exactly.
fn decompress_packbits_into(src: &[u8], out: &mut [u8]) -> Result<(), ()> {
    let mut si = 0;
    let mut oi = 0;
    while si < src.len() {
        let control = src[si];
        si += 1;
        if control < 128 {
            let n = control as usize + 1;
            if si + n > src.len() || oi + n > out.len() {
                return Err(());
            }
            out[oi..oi + n].copy_from_slice(&src[si..si + n]);
            si += n;
            oi += n;
        } else if control == 128 {
            // The compressor never emits the no-op control byte.
            return Err(());
        } else {
            let n = 257 - control as usize;
            if si >= src.len() || oi + n > out.len() {
                return Err(());
            }
            out[oi..oi + n].fill(src[si]);
            si += 1;
            oi += n;
        }
    }
    if oi == out.len() {
        Ok(())
    } else {
        Err(())
    }
}

/// Worst-case PackBits output for `raw` input bytes (one control byte per
/// 128-literal block, plus slack) — the bound streaming readers place on a
/// chunk's stored length before allocating its read buffer.
fn packbits_bound(raw: usize) -> usize {
    raw + raw / 128 + 2
}

// ---------------------------------------------------------------------------
// Header and chunk primitives
// ---------------------------------------------------------------------------

/// Renders the fixed 8-byte container header.
fn encode_header(kind: ContainerKind, compress: bool) -> [u8; CONTAINER_HEADER_LEN] {
    let flags = if compress { FLAG_COMPRESSED } else { 0 };
    let mut header = [0u8; CONTAINER_HEADER_LEN];
    header[..4].copy_from_slice(&CONTAINER_MAGIC);
    header[4] = CONTAINER_VERSION;
    header[5] = kind.tag();
    header[6] = flags;
    header
}

/// Parses and validates the fixed header, returning whether chunks may be
/// compressed. Version and kind are checked before anything downstream reads
/// a length field, so unknown versions are rejected before any allocation.
fn parse_header(
    bytes: &[u8; CONTAINER_HEADER_LEN],
    expected: ContainerKind,
) -> Result<bool, ContainerError> {
    if bytes[..4] != CONTAINER_MAGIC {
        return Err(ContainerError::BadMagic(
            bytes[..4].try_into().expect("fixed 4-byte slice"),
        ));
    }
    if bytes[4] != CONTAINER_VERSION {
        return Err(ContainerError::UnsupportedVersion(bytes[4]));
    }
    let kind = ContainerKind::from_tag(bytes[5]).ok_or(ContainerError::UnknownKind(bytes[5]))?;
    if kind != expected {
        return Err(ContainerError::WrongKind {
            expected,
            found: kind,
        });
    }
    if bytes[6] & !FLAG_COMPRESSED != 0 {
        return Err(ContainerError::UnknownFlags(bytes[6]));
    }
    if bytes[7] != 0 {
        return Err(ContainerError::NonZeroReserved(u32::from(bytes[7])));
    }
    Ok(bytes[6] & FLAG_COMPRESSED != 0)
}

/// A parsed 16-byte chunk header.
#[derive(Debug, Clone, Copy)]
struct ChunkHeader {
    tag: u32,
    raw_len: u32,
    stored_len: u32,
    checksum: u32,
}

impl ChunkHeader {
    fn parse(bytes: &[u8; CHUNK_HEADER_LEN]) -> Self {
        let le = |offset: usize| {
            u32::from_le_bytes(
                bytes[offset..offset + 4]
                    .try_into()
                    .expect("fixed 4-byte slice"),
            )
        };
        Self {
            tag: le(0),
            raw_len: le(4),
            stored_len: le(8),
            checksum: le(12),
        }
    }

    fn compressed(&self) -> bool {
        self.stored_len != self.raw_len
    }
}

/// Appends one chunk (header + stored bytes) to `out`, compressing when
/// allowed and profitable.
fn emit_chunk(
    out: &mut Vec<u8>,
    tag: u32,
    raw: &[u8],
    compress: bool,
) -> Result<(), ContainerError> {
    let raw_len = u32::try_from(raw.len()).map_err(|_| ContainerError::ChunkTooLarge {
        declared: raw.len() as u64,
        limit: u64::from(u32::MAX),
    })?;
    let packed;
    let stored: &[u8] = if compress {
        packed = compress_packbits(raw);
        if packed.len() < raw.len() {
            &packed
        } else {
            raw
        }
    } else {
        raw
    };
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&raw_len.to_le_bytes());
    out.extend_from_slice(&(stored.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(stored).to_le_bytes());
    out.extend_from_slice(stored);
    Ok(())
}

/// Verifies a chunk's checksum and materialises its decompressed bytes into
/// `out` (whose length must already equal the chunk's `raw_len`).
fn decode_chunk_into(
    tag: u32,
    checksum: u32,
    stored: &[u8],
    out: &mut [u8],
) -> Result<(), ContainerError> {
    let computed = crc32(stored);
    if computed != checksum {
        return Err(ContainerError::ChecksumMismatch {
            tag,
            declared: checksum,
            computed,
        });
    }
    if stored.len() == out.len() {
        out.copy_from_slice(stored);
        Ok(())
    } else {
        decompress_packbits_into(stored, out)
            .map_err(|()| ContainerError::InvalidCompression { tag })
    }
}

/// Borrowed view of one chunk inside an in-memory container.
#[derive(Debug, Clone, Copy)]
struct SliceChunk<'a> {
    tag: u32,
    raw_len: usize,
    checksum: u32,
    stored: &'a [u8],
}

/// Cursor over an in-memory container body.
struct SliceReader<'a> {
    bytes: &'a [u8],
    cursor: usize,
}

impl<'a> SliceReader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ContainerError> {
        let remaining = self.bytes.len() - self.cursor;
        if remaining < len {
            return Err(ContainerError::Truncated {
                needed: len,
                found: remaining,
            });
        }
        let slice = &self.bytes[self.cursor..self.cursor + len];
        self.cursor += len;
        Ok(slice)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.cursor
    }

    /// Parses the next chunk header and borrows its stored bytes, or returns
    /// `None` at a clean end of input.
    fn next_chunk(
        &mut self,
        compressed_allowed: bool,
    ) -> Result<Option<SliceChunk<'a>>, ContainerError> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        let header = ChunkHeader::parse(
            self.take(CHUNK_HEADER_LEN)?
                .try_into()
                .expect("take returned CHUNK_HEADER_LEN bytes"),
        );
        if header.compressed() && !compressed_allowed {
            return Err(ContainerError::InvalidCompression { tag: header.tag });
        }
        let stored = self.take(header.stored_len as usize)?;
        Ok(Some(SliceChunk {
            tag: header.tag,
            raw_len: header.raw_len as usize,
            checksum: header.checksum,
            stored,
        }))
    }
}

/// Verifies and materialises an owned text/record chunk, capping the
/// allocation at `max_raw` bytes.
fn chunk_to_vec(chunk: &SliceChunk<'_>, max_raw: u64) -> Result<Vec<u8>, ContainerError> {
    if chunk.raw_len as u64 > max_raw {
        return Err(ContainerError::ChunkTooLarge {
            declared: chunk.raw_len as u64,
            limit: max_raw,
        });
    }
    let mut raw = vec![0u8; chunk.raw_len];
    decode_chunk_into(chunk.tag, chunk.checksum, chunk.stored, &mut raw)?;
    Ok(raw)
}

// ---------------------------------------------------------------------------
// Grid containers
// ---------------------------------------------------------------------------

/// Serializes one payload as a grid container with `bands` per-band chunks
/// (clamped to `[1, min(height, 255)]`), optionally compressed.
///
/// # Errors
///
/// Returns [`ContainerError::Data`] when the payload's declared shape and
/// byte length disagree, and [`ContainerError::ChunkTooLarge`] when a single
/// band exceeds the 4 GiB chunk ceiling.
pub fn write_grid(
    payload: &ProbPayload,
    bands: usize,
    compress: bool,
) -> Result<Vec<u8>, ContainerError> {
    payload.checked_value_count()?;
    let bands = bands.clamp(1, payload.height.min(255));
    let mut out = Vec::with_capacity(
        CONTAINER_HEADER_LEN + GRID_DESC_LEN + bands * CHUNK_HEADER_LEN + payload.bytes.len(),
    );
    out.extend_from_slice(&encode_header(ContainerKind::Grid, compress));
    out.extend_from_slice(&grid_descriptor(payload, bands)?);
    let mut offset = 0;
    for band in 0..bands {
        let len = band_byte_len(
            band,
            bands,
            payload.height,
            payload.width,
            payload.channels,
            payload.encoding,
        );
        emit_chunk(
            &mut out,
            band as u32,
            &payload.bytes[offset..offset + len],
            compress,
        )?;
        offset += len;
    }
    debug_assert_eq!(offset, payload.bytes.len());
    Ok(out)
}

/// Renders the 16-byte grid descriptor.
fn grid_descriptor(
    payload: &ProbPayload,
    bands: usize,
) -> Result<[u8; GRID_DESC_LEN], ContainerError> {
    let dim = |value: usize, field: &'static str| {
        u32::try_from(value).map_err(|_| ContainerError::FieldOverflow(field))
    };
    let mut desc = [0u8; GRID_DESC_LEN];
    desc[0..4].copy_from_slice(&dim(payload.width, "width")?.to_le_bytes());
    desc[4..8].copy_from_slice(&dim(payload.height, "height")?.to_le_bytes());
    desc[8..12].copy_from_slice(&dim(payload.channels, "channels")?.to_le_bytes());
    desc[12] = payload.encoding.tag();
    desc[13] = bands as u8;
    Ok(desc)
}

/// The parsed grid/frame shape descriptor fields.
struct GridShape {
    width: usize,
    height: usize,
    channels: usize,
    encoding: ProbEncoding,
    bands: usize,
    payload_len: usize,
}

/// Validates descriptor fields and derives the (checked, capped) payload
/// length — the one place untrusted shape bytes turn into an allocation size.
fn checked_shape(
    width: u32,
    height: u32,
    channels: u32,
    encoding_tag: u8,
    bands: u8,
    max_payload_bytes: u64,
) -> Result<GridShape, ContainerError> {
    let encoding = ProbEncoding::from_tag(encoding_tag)
        .ok_or(ContainerError::UnknownEncoding(encoding_tag))?;
    let (width, height, channels) = (width as usize, height as usize, channels as usize);
    let payload_len =
        encoding
            .payload_len(width, height, channels)
            .ok_or(DataError::InvalidPayloadShape {
                width,
                height,
                channels,
            })?;
    if payload_len as u64 > max_payload_bytes {
        return Err(ContainerError::ChunkTooLarge {
            declared: payload_len as u64,
            limit: max_payload_bytes,
        });
    }
    if bands == 0 || bands as usize > height {
        return Err(ContainerError::InvalidBandCount { bands, height });
    }
    Ok(GridShape {
        width,
        height,
        channels,
        encoding,
        bands: bands as usize,
        payload_len,
    })
}

/// Decodes a grid container serially. See [`read_grid_with_threads`].
///
/// # Errors
///
/// Any [`ContainerError`], as produced by the stage that failed.
pub fn read_grid(bytes: &[u8]) -> Result<ProbPayload, ContainerError> {
    read_grid_with_threads(bytes, 1)
}

/// Decodes a grid container, verifying and decompressing its band chunks on
/// up to `threads` scoped threads (clamped to the band count; `1` decodes
/// serially). The result is bit-identical whatever the thread count: bands
/// write disjoint sub-slices of the output buffer.
///
/// # Errors
///
/// Any [`ContainerError`]: truncation at any boundary, checksum or
/// compression corruption in any chunk, version/kind/flag skew, or a
/// descriptor whose declared payload exceeds [`MAX_GRID_BYTES`] (checked
/// before allocation). Never panics, whatever the bytes contain.
pub fn read_grid_with_threads(bytes: &[u8], threads: usize) -> Result<ProbPayload, ContainerError> {
    let mut reader = SliceReader { bytes, cursor: 0 };
    let compressed_allowed = parse_header(
        reader
            .take(CONTAINER_HEADER_LEN)?
            .try_into()
            .expect("take returned CONTAINER_HEADER_LEN bytes"),
        ContainerKind::Grid,
    )?;
    let desc = reader.take(GRID_DESC_LEN)?;
    let le = |offset: usize| {
        u32::from_le_bytes(desc[offset..offset + 4].try_into().expect("4-byte field"))
    };
    if desc[14] != 0 || desc[15] != 0 {
        return Err(ContainerError::NonZeroReserved(u32::from_le_bytes([
            desc[14], desc[15], 0, 0,
        ])));
    }
    let shape = checked_shape(le(0), le(4), le(8), desc[12], desc[13], MAX_GRID_BYTES)?;

    // Walk and validate every chunk header before allocating the payload.
    let mut chunks = Vec::with_capacity(shape.bands);
    for band in 0..shape.bands {
        let chunk = reader
            .next_chunk(compressed_allowed)?
            .ok_or(ContainerError::Truncated {
                needed: CHUNK_HEADER_LEN,
                found: 0,
            })?;
        if chunk.tag != band as u32 {
            return Err(ContainerError::UnexpectedTag {
                expected: band as u32,
                found: chunk.tag,
            });
        }
        let expected = band_byte_len(
            band,
            shape.bands,
            shape.height,
            shape.width,
            shape.channels,
            shape.encoding,
        );
        if chunk.raw_len != expected {
            return Err(ContainerError::ChunkLengthMismatch {
                tag: chunk.tag,
                expected,
                found: chunk.raw_len,
            });
        }
        chunks.push(chunk);
    }
    if reader.remaining() != 0 {
        return Err(ContainerError::TrailingBytes(reader.remaining()));
    }

    let mut data = vec![0u8; shape.payload_len];
    decode_bands(&chunks, &mut data, threads)?;
    Ok(ProbPayload {
        width: shape.width,
        height: shape.height,
        channels: shape.channels,
        encoding: shape.encoding,
        bytes: data,
    })
}

/// Verifies and decompresses validated band chunks into `data`, fanning the
/// per-band work across up to `threads` scoped threads.
fn decode_bands(
    chunks: &[SliceChunk<'_>],
    data: &mut [u8],
    threads: usize,
) -> Result<(), ContainerError> {
    // Pre-split the output into the disjoint per-band slices; chunk raw
    // lengths were validated against the band partition, so the split is
    // exact by construction.
    let mut slots = Vec::with_capacity(chunks.len());
    let mut rest = data;
    for chunk in chunks {
        let (slice, tail) = rest.split_at_mut(chunk.raw_len);
        rest = tail;
        slots.push((slice, *chunk));
    }
    debug_assert!(rest.is_empty());

    let workers = threads.clamp(1, chunks.len().max(1));
    if workers <= 1 {
        for (slice, chunk) in slots {
            decode_chunk_into(chunk.tag, chunk.checksum, chunk.stored, slice)?;
        }
        return Ok(());
    }
    let mut buckets: Vec<Vec<(&mut [u8], SliceChunk<'_>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (index, slot) in slots.into_iter().enumerate() {
        buckets[index % workers].push(slot);
    }
    let results: Vec<Result<(), ContainerError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    for (slice, chunk) in bucket {
                        decode_chunk_into(chunk.tag, chunk.checksum, chunk.stored, slice)?;
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("band decode worker never panics"))
            .collect()
    });
    results.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Checkpoint containers
// ---------------------------------------------------------------------------

/// Wraps a predictor's canonical JSON in a checksummed checkpoint container.
///
/// # Errors
///
/// Returns [`ContainerError::ChunkTooLarge`] only when the JSON exceeds the
/// 4 GiB chunk ceiling.
pub fn write_checkpoint(json: &str, compress: bool) -> Result<Vec<u8>, ContainerError> {
    let mut out = Vec::with_capacity(CONTAINER_HEADER_LEN + CHUNK_HEADER_LEN + json.len());
    out.extend_from_slice(&encode_header(ContainerKind::Checkpoint, compress));
    emit_chunk(&mut out, TAG_CHECKPOINT, json.as_bytes(), compress)?;
    Ok(out)
}

/// Extracts the canonical JSON from a checkpoint container, verifying its
/// checksum. Decompressed size is capped at [`MAX_TEXT_CHUNK_BYTES`].
///
/// # Errors
///
/// Any [`ContainerError`]; never panics, whatever the bytes contain.
pub fn read_checkpoint(bytes: &[u8]) -> Result<String, ContainerError> {
    let mut reader = SliceReader { bytes, cursor: 0 };
    let compressed_allowed = parse_header(
        reader
            .take(CONTAINER_HEADER_LEN)?
            .try_into()
            .expect("take returned CONTAINER_HEADER_LEN bytes"),
        ContainerKind::Checkpoint,
    )?;
    let chunk = reader
        .next_chunk(compressed_allowed)?
        .ok_or(ContainerError::Truncated {
            needed: CHUNK_HEADER_LEN,
            found: 0,
        })?;
    if chunk.tag != TAG_CHECKPOINT {
        return Err(ContainerError::UnexpectedTag {
            expected: TAG_CHECKPOINT,
            found: chunk.tag,
        });
    }
    if reader.remaining() != 0 {
        return Err(ContainerError::TrailingBytes(reader.remaining()));
    }
    let raw = chunk_to_vec(&chunk, MAX_TEXT_CHUNK_BYTES)?;
    String::from_utf8(raw).map_err(|_| ContainerError::NotUtf8 {
        tag: TAG_CHECKPOINT,
    })
}

// ---------------------------------------------------------------------------
// Record corpora
// ---------------------------------------------------------------------------

/// Serializes a sequence of text records (one chunk per record, tag = record
/// index) — the container form of the golden oracle's JSONL fixtures.
///
/// # Errors
///
/// Returns [`ContainerError::ChunkTooLarge`] when a record exceeds the 4 GiB
/// chunk ceiling.
pub fn write_records<I, S>(records: I, compress: bool) -> Result<Vec<u8>, ContainerError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = Vec::new();
    out.extend_from_slice(&encode_header(ContainerKind::RecordCorpus, compress));
    for (index, record) in records.into_iter().enumerate() {
        emit_chunk(&mut out, index as u32, record.as_ref().as_bytes(), compress)?;
    }
    Ok(out)
}

/// Reads every record of a record corpus, verifying each chunk's checksum
/// and index. Per-record decompressed size is capped at
/// [`MAX_TEXT_CHUNK_BYTES`].
///
/// # Errors
///
/// Any [`ContainerError`]; never panics, whatever the bytes contain.
pub fn read_records(bytes: &[u8]) -> Result<Vec<String>, ContainerError> {
    let mut reader = SliceReader { bytes, cursor: 0 };
    let compressed_allowed = parse_header(
        reader
            .take(CONTAINER_HEADER_LEN)?
            .try_into()
            .expect("take returned CONTAINER_HEADER_LEN bytes"),
        ContainerKind::RecordCorpus,
    )?;
    let mut records = Vec::new();
    while let Some(chunk) = reader.next_chunk(compressed_allowed)? {
        let expected = records.len() as u32;
        if chunk.tag != expected {
            return Err(ContainerError::UnexpectedTag {
                expected,
                found: chunk.tag,
            });
        }
        let raw = chunk_to_vec(&chunk, MAX_TEXT_CHUNK_BYTES)?;
        records
            .push(String::from_utf8(raw).map_err(|_| ContainerError::NotUtf8 { tag: chunk.tag })?);
    }
    Ok(records)
}

// ---------------------------------------------------------------------------
// Frame corpora
// ---------------------------------------------------------------------------

/// One frame read back from a frame corpus: the recorded identity, the
/// prediction payload exactly as stored, and the ground truth when the
/// recorded frame carried labels.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusFrame {
    /// Identity the frame was recorded under.
    pub id: FrameId,
    /// The stored prediction payload (whatever encoding it was recorded in).
    pub payload: ProbPayload,
    /// Ground-truth labels, when the recorded frame carried them.
    pub ground_truth: Option<LabelMap>,
}

impl CorpusFrame {
    /// Decodes the stored payload into a full [`Frame`]. For
    /// [`ProbEncoding::F64`] corpora the result is bit-identical to the
    /// frame that was recorded.
    ///
    /// # Errors
    ///
    /// The payload's typed decode errors ([`DataError`]).
    pub fn to_frame(&self) -> Result<Frame, DataError> {
        let prediction = self.payload.decode()?;
        match &self.ground_truth {
            Some(labels) => Frame::labeled(self.id, labels.clone(), prediction),
            None => Ok(Frame::unlabeled(self.id, prediction)),
        }
    }
}

/// Streaming writer for a frame corpus: an 8-byte header, then per frame a
/// descriptor chunk, the prediction's band chunks and (optionally) a
/// ground-truth chunk, all checksummed.
#[derive(Debug)]
pub struct CorpusWriter<W: Write> {
    sink: W,
    compress: bool,
    frames_written: usize,
}

impl<W: Write> CorpusWriter<W> {
    /// Starts a corpus: writes the container header to `sink`.
    ///
    /// # Errors
    ///
    /// [`ContainerError::Io`] when the sink rejects the header.
    pub fn new(mut sink: W, compress: bool) -> Result<Self, ContainerError> {
        sink.write_all(&encode_header(ContainerKind::FrameCorpus, compress))
            .map_err(|e| ContainerError::Io(e.kind()))?;
        Ok(Self {
            sink,
            compress,
            frames_written: 0,
        })
    }

    /// Appends one already-encoded payload (plus optional ground truth),
    /// split into `bands` band chunks (clamped to `[1, min(height, 255)]`).
    ///
    /// # Errors
    ///
    /// [`ContainerError::Data`] for an inconsistent payload or a ground
    /// truth of a different shape, [`ContainerError::Io`] on sink failure.
    pub fn write_payload(
        &mut self,
        id: FrameId,
        payload: &ProbPayload,
        ground_truth: Option<&LabelMap>,
        bands: usize,
    ) -> Result<(), ContainerError> {
        payload.checked_value_count()?;
        if let Some(labels) = ground_truth {
            if (labels.width(), labels.height()) != (payload.width, payload.height) {
                return Err(ContainerError::Data(DataError::FrameShapeMismatch {
                    ground_truth: (labels.width(), labels.height()),
                    prediction: (payload.width, payload.height),
                }));
            }
        }
        let bands = bands.clamp(1, payload.height.min(255));

        let mut desc = [0u8; FRAME_DESC_LEN];
        desc[0..8].copy_from_slice(&(id.sequence as u64).to_le_bytes());
        desc[8..16].copy_from_slice(&(id.index as u64).to_le_bytes());
        let grid = grid_descriptor(payload, bands)?;
        desc[16..32].copy_from_slice(&grid);
        // Repurpose the grid descriptor's first reserved byte as the frame
        // flags (bit 0: ground truth follows).
        desc[30] = if ground_truth.is_some() {
            FRAME_FLAG_GROUND_TRUTH
        } else {
            0
        };

        let mut buffer = Vec::with_capacity(
            CHUNK_HEADER_LEN * (bands + 2) + FRAME_DESC_LEN + payload.bytes.len(),
        );
        emit_chunk(&mut buffer, TAG_FRAME, &desc, self.compress)?;
        let mut offset = 0;
        for band in 0..bands {
            let len = band_byte_len(
                band,
                bands,
                payload.height,
                payload.width,
                payload.channels,
                payload.encoding,
            );
            emit_chunk(
                &mut buffer,
                band as u32,
                &payload.bytes[offset..offset + len],
                self.compress,
            )?;
            offset += len;
        }
        debug_assert_eq!(offset, payload.bytes.len());
        if let Some(labels) = ground_truth {
            let mut ids = Vec::with_capacity(labels.width() * labels.height() * 2);
            for &id in labels.ids().as_slice() {
                ids.extend_from_slice(&id.to_le_bytes());
            }
            emit_chunk(&mut buffer, TAG_GROUND_TRUTH, &ids, self.compress)?;
        }
        self.sink
            .write_all(&buffer)
            .map_err(|e| ContainerError::Io(e.kind()))?;
        self.frames_written += 1;
        Ok(())
    }

    /// Appends one frame, encoding its prediction in `encoding` and storing
    /// its ground truth when present.
    ///
    /// # Errors
    ///
    /// As [`CorpusWriter::write_payload`].
    pub fn write_frame(
        &mut self,
        frame: &Frame,
        encoding: ProbEncoding,
        bands: usize,
    ) -> Result<(), ContainerError> {
        let payload = ProbPayload::encode(&frame.prediction, encoding);
        self.write_payload(frame.id, &payload, frame.ground_truth.as_ref(), bands)
    }

    /// Frames appended so far.
    pub fn frames_written(&self) -> usize {
        self.frames_written
    }

    /// Flushes and returns the sink. A frame corpus needs no trailer: end of
    /// stream at a frame boundary *is* the valid end of the corpus.
    ///
    /// # Errors
    ///
    /// [`ContainerError::Io`] when the flush fails.
    pub fn finish(mut self) -> Result<W, ContainerError> {
        self.sink
            .flush()
            .map_err(|e| ContainerError::Io(e.kind()))?;
        Ok(self.sink)
    }
}

/// Streaming reader for a frame corpus.
#[derive(Debug)]
pub struct CorpusReader<R: Read> {
    source: R,
    compressed_allowed: bool,
    max_frame_bytes: u64,
    frames_read: usize,
}

impl<R: Read> CorpusReader<R> {
    /// Opens a corpus: reads and validates the container header.
    ///
    /// # Errors
    ///
    /// Any [`ContainerError`] of header validation.
    pub fn open(mut source: R) -> Result<Self, ContainerError> {
        let mut header = [0u8; CONTAINER_HEADER_LEN];
        if fill(&mut source, &mut header, false)?.is_none() {
            unreachable!("fill with allow_clean_eof=false never yields None");
        }
        let compressed_allowed = parse_header(&header, ContainerKind::FrameCorpus)?;
        Ok(Self {
            source,
            compressed_allowed,
            max_frame_bytes: MAX_GRID_BYTES,
            frames_read: 0,
        })
    }

    /// Replaces the per-frame decoded-payload cap (default
    /// [`MAX_GRID_BYTES`]); frames declaring more are rejected before any
    /// allocation.
    pub fn with_frame_limit(mut self, max_frame_bytes: u64) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Frames decoded so far.
    pub fn frames_read(&self) -> usize {
        self.frames_read
    }

    /// Reads the next frame, or `None` at a clean end of stream (which is
    /// only valid at a frame boundary — a torn file is
    /// [`ContainerError::Truncated`]).
    ///
    /// # Errors
    ///
    /// Any [`ContainerError`]; never panics, whatever the stream contains.
    pub fn next_frame(&mut self) -> Result<Option<CorpusFrame>, ContainerError> {
        let Some(desc_chunk) = self.read_chunk_header(true)? else {
            return Ok(None);
        };
        if desc_chunk.tag != TAG_FRAME {
            return Err(ContainerError::UnexpectedTag {
                expected: TAG_FRAME,
                found: desc_chunk.tag,
            });
        }
        if desc_chunk.raw_len as usize != FRAME_DESC_LEN {
            return Err(ContainerError::ChunkLengthMismatch {
                tag: desc_chunk.tag,
                expected: FRAME_DESC_LEN,
                found: desc_chunk.raw_len as usize,
            });
        }
        let mut desc = [0u8; FRAME_DESC_LEN];
        self.read_chunk_body(&desc_chunk, &mut desc)?;

        let le64 = |offset: usize| {
            u64::from_le_bytes(desc[offset..offset + 8].try_into().expect("8-byte field"))
        };
        let le32 = |offset: usize| {
            u32::from_le_bytes(desc[offset..offset + 4].try_into().expect("4-byte field"))
        };
        let sequence = usize::try_from(le64(0))
            .map_err(|_| ContainerError::FieldOverflow("frame sequence"))?;
        let index =
            usize::try_from(le64(8)).map_err(|_| ContainerError::FieldOverflow("frame index"))?;
        let flags = desc[30];
        if flags & !FRAME_FLAG_GROUND_TRUTH != 0 {
            return Err(ContainerError::UnknownFlags(flags));
        }
        if desc[31] != 0 {
            return Err(ContainerError::NonZeroReserved(u32::from(desc[31])));
        }
        let shape = checked_shape(
            le32(16),
            le32(20),
            le32(24),
            desc[28],
            desc[29],
            self.max_frame_bytes,
        )?;

        let mut bytes = vec![0u8; shape.payload_len];
        let mut rest = bytes.as_mut_slice();
        for band in 0..shape.bands {
            let chunk = match self.read_chunk_header(false)? {
                Some(chunk) => chunk,
                None => unreachable!("read_chunk_header without clean EOF never yields None"),
            };
            if chunk.tag != band as u32 {
                return Err(ContainerError::UnexpectedTag {
                    expected: band as u32,
                    found: chunk.tag,
                });
            }
            let expected = band_byte_len(
                band,
                shape.bands,
                shape.height,
                shape.width,
                shape.channels,
                shape.encoding,
            );
            if chunk.raw_len as usize != expected {
                return Err(ContainerError::ChunkLengthMismatch {
                    tag: chunk.tag,
                    expected,
                    found: chunk.raw_len as usize,
                });
            }
            let (slice, tail) = rest.split_at_mut(expected);
            rest = tail;
            self.read_chunk_body(&chunk, slice)?;
        }
        debug_assert!(rest.is_empty());

        let ground_truth = if flags & FRAME_FLAG_GROUND_TRUTH != 0 {
            let chunk = match self.read_chunk_header(false)? {
                Some(chunk) => chunk,
                None => unreachable!("read_chunk_header without clean EOF never yields None"),
            };
            if chunk.tag != TAG_GROUND_TRUTH {
                return Err(ContainerError::UnexpectedTag {
                    expected: TAG_GROUND_TRUTH,
                    found: chunk.tag,
                });
            }
            let expected = shape.width * shape.height * 2;
            if chunk.raw_len as usize != expected {
                return Err(ContainerError::ChunkLengthMismatch {
                    tag: chunk.tag,
                    expected,
                    found: chunk.raw_len as usize,
                });
            }
            let mut id_bytes = vec![0u8; expected];
            self.read_chunk_body(&chunk, &mut id_bytes)?;
            let ids: Vec<u16> = id_bytes
                .chunks_exact(2)
                .map(|pair| u16::from_le_bytes(pair.try_into().expect("2-byte pair")))
                .collect();
            let grid = Grid::from_vec(shape.width, shape.height, ids)
                .map_err(|e| ContainerError::Data(e.into()))?;
            Some(LabelMap::from_ids(grid)?)
        } else {
            None
        };

        self.frames_read += 1;
        Ok(Some(CorpusFrame {
            id: FrameId::new(sequence, index),
            payload: ProbPayload {
                width: shape.width,
                height: shape.height,
                channels: shape.channels,
                encoding: shape.encoding,
                bytes,
            },
            ground_truth,
        }))
    }

    /// Reads one chunk header; `allow_clean_eof` makes an EOF at the header
    /// boundary a valid end of corpus.
    fn read_chunk_header(
        &mut self,
        allow_clean_eof: bool,
    ) -> Result<Option<ChunkHeader>, ContainerError> {
        let mut buf = [0u8; CHUNK_HEADER_LEN];
        match fill(&mut self.source, &mut buf, allow_clean_eof)? {
            Some(()) => {
                let header = ChunkHeader::parse(&buf);
                if header.compressed() && !self.compressed_allowed {
                    return Err(ContainerError::InvalidCompression { tag: header.tag });
                }
                Ok(Some(header))
            }
            None => Ok(None),
        }
    }

    /// Reads a chunk's stored bytes (bounded by the PackBits worst case for
    /// the already-validated `raw_len`), verifies the checksum and
    /// materialises the decompressed body into `out`.
    fn read_chunk_body(
        &mut self,
        chunk: &ChunkHeader,
        out: &mut [u8],
    ) -> Result<(), ContainerError> {
        debug_assert_eq!(chunk.raw_len as usize, out.len());
        let bound = packbits_bound(chunk.raw_len as usize);
        if chunk.stored_len as usize > bound {
            return Err(ContainerError::InvalidCompression { tag: chunk.tag });
        }
        let mut stored = vec![0u8; chunk.stored_len as usize];
        if fill(&mut self.source, &mut stored, false)?.is_none() {
            unreachable!("fill with allow_clean_eof=false never yields None");
        }
        decode_chunk_into(chunk.tag, chunk.checksum, &stored, out)
    }
}

/// Fills `buf` from `source`, mapping a mid-buffer EOF to
/// [`ContainerError::Truncated`]. With `allow_clean_eof`, an EOF before the
/// first byte yields `Ok(None)` instead.
fn fill<R: Read>(
    source: &mut R,
    buf: &mut [u8],
    allow_clean_eof: bool,
) -> Result<Option<()>, ContainerError> {
    let mut filled = 0;
    while filled < buf.len() {
        match source.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_clean_eof {
                    return Ok(None);
                }
                return Err(ContainerError::Truncated {
                    needed: buf.len(),
                    found: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ContainerError::Io(e.kind())),
        }
    }
    Ok(Some(()))
}

/// Serializes frames as an in-memory frame corpus — the one-call form of
/// [`CorpusWriter`] used by tests and the golden replay path.
///
/// # Errors
///
/// As [`CorpusWriter::write_frame`].
pub fn write_corpus(
    frames: &[Frame],
    encoding: ProbEncoding,
    bands: usize,
    compress: bool,
) -> Result<Vec<u8>, ContainerError> {
    let mut writer = CorpusWriter::new(Vec::new(), compress)?;
    for frame in frames {
        writer.write_frame(frame, encoding, bands)?;
    }
    writer.finish()
}

/// Reads every frame of an in-memory frame corpus.
///
/// # Errors
///
/// As [`CorpusReader::next_frame`].
pub fn read_corpus(bytes: &[u8]) -> Result<Vec<CorpusFrame>, ContainerError> {
    let mut reader = CorpusReader::open(bytes)?;
    let mut frames = Vec::new();
    while let Some(frame) = reader.next_frame()? {
        frames.push(frame);
    }
    Ok(frames)
}
