//! Dense per-pixel softmax probability fields.

use crate::catalog::SemanticClass;
use crate::error::DataError;
use crate::labelmap::LabelMap;
use metaseg_imgproc::Grid;
use serde::{Deserialize, Serialize};

/// Tolerance when validating that probability vectors sum to one.
const DISTRIBUTION_TOLERANCE: f64 = 1e-6;

/// A dense per-pixel softmax field `f_z(y | x, w)`.
///
/// For every pixel `z` the map stores one probability per *evaluated*
/// semantic class (void has no channel), in class-id order. This is the only
/// thing MetaSeg ever needs from the segmentation network.
///
/// ```
/// use metaseg_data::{ProbMap, SemanticClass};
///
/// let num_classes = 19;
/// let mut probs = ProbMap::uniform(4, 2, num_classes);
/// assert!((probs.prob_at(0, 0, SemanticClass::Road) - 1.0 / 19.0).abs() < 1e-12);
/// let onehot: Vec<f64> = (0..19).map(|i| if i == 13 { 1.0 } else { 0.0 }).collect();
/// probs.set_distribution(1, 1, &onehot).unwrap();
/// assert_eq!(probs.argmax_class(1, 1), SemanticClass::Car);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbMap {
    width: usize,
    height: usize,
    num_classes: usize,
    /// Row-major, pixel-major storage: `data[(y * width + x) * num_classes + c]`.
    data: Vec<f64>,
}

impl ProbMap {
    /// Creates a field where every pixel carries the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the class count is zero.
    pub fn uniform(width: usize, height: usize, num_classes: usize) -> Self {
        assert!(
            width > 0 && height > 0 && num_classes > 0,
            "dimensions and class count must be non-zero"
        );
        Self {
            width,
            height,
            num_classes,
            data: vec![1.0 / num_classes as f64; width * height * num_classes],
        }
    }

    /// Creates a field that puts probability one on the class of `labels` at
    /// every pixel (void pixels get a uniform distribution). Useful for
    /// turning a hard prediction into a degenerate softmax field.
    pub fn one_hot(labels: &LabelMap, num_classes: usize) -> Self {
        let mut map = Self::uniform(labels.width(), labels.height(), num_classes);
        for y in 0..labels.height() {
            for x in 0..labels.width() {
                let class = labels.class_at(x, y);
                if !class.is_evaluated() {
                    continue;
                }
                let mut dist = vec![0.0; num_classes];
                dist[class.id() as usize] = 1.0;
                map.set_distribution_unchecked(x, y, &dist);
            }
        }
        map
    }

    /// Width of the field.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the field.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Shape as `(width, height)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of softmax channels (evaluated classes).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    #[inline]
    fn offset(&self, x: usize, y: usize) -> usize {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds for {}x{} probability map",
            self.width,
            self.height
        );
        (y * self.width + x) * self.num_classes
    }

    /// The probability vector at pixel `(x, y)` (one entry per evaluated class).
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the field.
    pub fn distribution(&self, x: usize, y: usize) -> &[f64] {
        let off = self.offset(x, y);
        &self.data[off..off + self.num_classes]
    }

    /// Probability of `class` at pixel `(x, y)` (0 for void / out-of-range channels).
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the field.
    pub fn prob_at(&self, x: usize, y: usize, class: SemanticClass) -> f64 {
        let channel = class.id() as usize;
        if channel >= self.num_classes {
            return 0.0;
        }
        self.distribution(x, y)[channel]
    }

    /// Overwrites the probability vector at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::WrongClassCount`] if `probs` has the wrong length
    /// and [`DataError::NotADistribution`] if it has negative entries or does
    /// not sum to one within `1e-6`.
    pub fn set_distribution(&mut self, x: usize, y: usize, probs: &[f64]) -> Result<(), DataError> {
        if probs.len() != self.num_classes {
            return Err(DataError::WrongClassCount {
                expected: self.num_classes,
                found: probs.len(),
            });
        }
        let sum: f64 = probs.iter().sum();
        if probs.iter().any(|p| *p < 0.0) || (sum - 1.0).abs() > DISTRIBUTION_TOLERANCE {
            return Err(DataError::NotADistribution { sum });
        }
        self.set_distribution_unchecked(x, y, probs);
        Ok(())
    }

    /// Overwrites the probability vector at `(x, y)` without validation.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the field or `probs` has the wrong length.
    pub fn set_distribution_unchecked(&mut self, x: usize, y: usize, probs: &[f64]) {
        assert_eq!(
            probs.len(),
            self.num_classes,
            "wrong number of class probabilities"
        );
        let off = self.offset(x, y);
        self.data[off..off + self.num_classes].copy_from_slice(probs);
    }

    /// Index of the most probable channel at `(x, y)` (ties resolve to the
    /// lowest class id, matching `argmax`).
    pub fn argmax_channel(&self, x: usize, y: usize) -> usize {
        let dist = self.distribution(x, y);
        let mut best = 0usize;
        let mut best_p = dist[0];
        for (i, &p) in dist.iter().enumerate().skip(1) {
            if p > best_p {
                best = i;
                best_p = p;
            }
        }
        best
    }

    /// The maximum a-posteriori (Bayes) class at `(x, y)`.
    pub fn argmax_class(&self, x: usize, y: usize) -> SemanticClass {
        SemanticClass::from_id(self.argmax_channel(x, y) as u16)
            .expect("channel index is a valid class id")
    }

    /// The Bayes/MAP predicted label map (`argmax` at every pixel).
    pub fn argmax_map(&self) -> LabelMap {
        LabelMap::from_fn(self.width, self.height, |x, y| self.argmax_class(x, y))
    }

    /// Largest and second largest probability at `(x, y)`.
    pub fn top2(&self, x: usize, y: usize) -> (f64, f64) {
        let dist = self.distribution(x, y);
        let mut first = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        for &p in dist {
            if p > first {
                second = first;
                first = p;
            } else if p > second {
                second = p;
            }
        }
        if dist.len() == 1 {
            second = 0.0;
        }
        (first, second)
    }

    /// Normalised Shannon entropy at `(x, y)`:
    /// `E_z = -1/log(q) * Σ_y f_z(y) log f_z(y)` ∈ [0, 1].
    pub fn entropy_at(&self, x: usize, y: usize) -> f64 {
        let dist = self.distribution(x, y);
        let q = dist.len() as f64;
        let raw: f64 = dist.iter().filter(|p| **p > 0.0).map(|p| -p * p.ln()).sum();
        (raw / q.ln()).clamp(0.0, 1.0)
    }

    /// Probability margin at `(x, y)`: `D_z = 1 - (p_(1) - p_(2))` ∈ [0, 1],
    /// large when the two best classes compete.
    pub fn margin_at(&self, x: usize, y: usize) -> f64 {
        let (first, second) = self.top2(x, y);
        (1.0 - (first - second)).clamp(0.0, 1.0)
    }

    /// Variation ratio at `(x, y)`: `V_z = 1 - p_(1)` ∈ [0, 1].
    pub fn variation_ratio_at(&self, x: usize, y: usize) -> f64 {
        let (first, _) = self.top2(x, y);
        (1.0 - first).clamp(0.0, 1.0)
    }

    /// Dense normalised-entropy heat map.
    pub fn entropy_map(&self) -> Grid<f64> {
        Grid::from_fn(self.width, self.height, |x, y| self.entropy_at(x, y))
    }

    /// Dense probability-margin heat map.
    pub fn margin_map(&self) -> Grid<f64> {
        Grid::from_fn(self.width, self.height, |x, y| self.margin_at(x, y))
    }

    /// Dense variation-ratio heat map.
    pub fn variation_ratio_map(&self) -> Grid<f64> {
        Grid::from_fn(self.width, self.height, |x, y| {
            self.variation_ratio_at(x, y)
        })
    }

    /// Structural integrity of a map that crossed a trust boundary (e.g. a
    /// wire-decoded payload): non-zero dimensions and a backing buffer of
    /// exactly `width * height * num_classes` values. Every accessor assumes
    /// this invariant, so servers must check it before touching a decoded
    /// map — probability *values* are intentionally not inspected here (use
    /// [`ProbMap::validate`] for that, at O(pixels) cost).
    pub fn shape_consistent(&self) -> bool {
        self.width > 0
            && self.height > 0
            && self.num_classes > 0
            && self
                .width
                .checked_mul(self.height)
                .and_then(|px| px.checked_mul(self.num_classes))
                == Some(self.data.len())
    }

    /// Checks that every pixel carries a valid probability distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NotADistribution`] for the first offending pixel.
    pub fn validate(&self) -> Result<(), DataError> {
        for y in 0..self.height {
            for x in 0..self.width {
                let dist = self.distribution(x, y);
                let sum: f64 = dist.iter().sum();
                if dist.iter().any(|p| *p < 0.0) || (sum - 1.0).abs() > 1e-4 {
                    return Err(DataError::NotADistribution { sum });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn one_hot_vec(channel: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if i == channel { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn uniform_has_maximal_entropy() {
        let map = ProbMap::uniform(2, 2, 19);
        assert!((map.entropy_at(0, 0) - 1.0).abs() < 1e-9);
        assert!((map.margin_at(0, 0) - 1.0).abs() < 1e-9);
        assert!(map.validate().is_ok());
    }

    #[test]
    fn one_hot_has_zero_entropy() {
        let mut map = ProbMap::uniform(2, 2, 19);
        map.set_distribution(0, 0, &one_hot_vec(3, 19)).unwrap();
        assert!(map.entropy_at(0, 0).abs() < 1e-12);
        assert!(map.margin_at(0, 0).abs() < 1e-12);
        assert!(map.variation_ratio_at(0, 0).abs() < 1e-12);
        assert_eq!(map.argmax_class(0, 0), SemanticClass::Wall);
    }

    #[test]
    fn set_distribution_validates() {
        let mut map = ProbMap::uniform(2, 2, 3);
        assert!(matches!(
            map.set_distribution(0, 0, &[0.5, 0.5]),
            Err(DataError::WrongClassCount { .. })
        ));
        assert!(matches!(
            map.set_distribution(0, 0, &[0.5, 0.4, 0.4]),
            Err(DataError::NotADistribution { .. })
        ));
        assert!(matches!(
            map.set_distribution(0, 0, &[-0.1, 0.6, 0.5]),
            Err(DataError::NotADistribution { .. })
        ));
        assert!(map.set_distribution(0, 0, &[0.2, 0.3, 0.5]).is_ok());
    }

    #[test]
    fn argmax_map_and_one_hot_roundtrip() {
        let labels = LabelMap::from_fn(3, 3, |x, y| {
            if (x + y) % 2 == 0 {
                SemanticClass::Road
            } else {
                SemanticClass::Car
            }
        });
        let probs = ProbMap::one_hot(&labels, 19);
        let recovered = probs.argmax_map();
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(recovered.class_at(x, y), labels.class_at(x, y));
            }
        }
    }

    #[test]
    fn top2_orders_correctly() {
        let mut map = ProbMap::uniform(1, 1, 4);
        map.set_distribution(0, 0, &[0.1, 0.6, 0.25, 0.05]).unwrap();
        let (first, second) = map.top2(0, 0);
        assert!((first - 0.6).abs() < 1e-12);
        assert!((second - 0.25).abs() < 1e-12);
        assert!((map.margin_at(0, 0) - (1.0 - 0.35)).abs() < 1e-12);
        assert!((map.variation_ratio_at(0, 0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn heatmaps_have_field_shape() {
        let map = ProbMap::uniform(5, 3, 19);
        assert_eq!(map.entropy_map().shape(), (5, 3));
        assert_eq!(map.margin_map().shape(), (5, 3));
        assert_eq!(map.variation_ratio_map().shape(), (5, 3));
    }

    proptest! {
        #[test]
        fn prop_dispersion_measures_in_unit_interval(raw in proptest::collection::vec(0.01f64..10.0, 19)) {
            let sum: f64 = raw.iter().sum();
            let dist: Vec<f64> = raw.iter().map(|v| v / sum).collect();
            let mut map = ProbMap::uniform(1, 1, 19);
            map.set_distribution(0, 0, &dist).unwrap();
            let e = map.entropy_at(0, 0);
            let m = map.margin_at(0, 0);
            let v = map.variation_ratio_at(0, 0);
            prop_assert!((0.0..=1.0).contains(&e));
            prop_assert!((0.0..=1.0).contains(&m));
            prop_assert!((0.0..=1.0).contains(&v));
            // The variation ratio is at most the margin: 1 - p1 <= 1 - (p1 - p2).
            prop_assert!(v <= m + 1e-12);
        }

        #[test]
        fn prop_argmax_is_most_probable(raw in proptest::collection::vec(0.01f64..10.0, 19)) {
            let sum: f64 = raw.iter().sum();
            let dist: Vec<f64> = raw.iter().map(|v| v / sum).collect();
            let mut map = ProbMap::uniform(1, 1, 19);
            map.set_distribution(0, 0, &dist).unwrap();
            let argmax = map.argmax_channel(0, 0);
            for &p in &dist {
                prop_assert!(dist[argmax] >= p - 1e-15);
            }
        }
    }
}
