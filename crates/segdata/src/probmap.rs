//! Dense per-pixel softmax probability fields.

use crate::catalog::SemanticClass;
use crate::error::DataError;
use crate::labelmap::LabelMap;
use metaseg_imgproc::Grid;
use serde::{Deserialize, Serialize};

/// Tolerance when validating that probability vectors sum to one.
const DISTRIBUTION_TOLERANCE: f64 = 1e-6;

/// Everything the extraction kernel needs from one pixel's softmax
/// distribution, computed in a single fused scan of the channel axis.
///
/// The scan visits each probability exactly once and derives the argmax
/// channel, the two largest values and the un-normalised Shannon entropy
/// simultaneously. [`ProbMap::argmax_channel`], [`ProbMap::top2`] and the
/// dispersion accessors are all routed through it, so there is exactly one
/// definition of the tie-breaking ("first maximum wins") and of the entropy
/// summation order in the codebase — and the hot extraction kernel reads
/// each pixel's channel vector once instead of re-walking it per measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionScan {
    /// Channel of the largest probability; ties resolve to the lowest
    /// channel index (the first maximum encountered wins).
    pub argmax: usize,
    /// Largest probability.
    pub top1: f64,
    /// Second largest probability (`0.0` for single-channel distributions).
    pub top2: f64,
    /// Un-normalised entropy `Σ -p ln p` over the positive entries, summed
    /// in channel order.
    pub raw_entropy: f64,
}

impl DistributionScan {
    /// Scans a probability vector once.
    ///
    /// The float operations and their order are bit-identical to the
    /// historical per-measure accessors: entropy terms accumulate in
    /// channel order over entries `> 0` (an entry of exactly `1.0`
    /// contributes `-0.0`, which never changes the sum and is skipped), and
    /// the top-2 search keeps the first maximum, matching `argmax`.
    ///
    /// Non-finite channel values (the NaN stripes a dropped-out sensor
    /// produces) are treated as probability `0.0`, so a dropout pixel
    /// degrades to the defined all-zero-stripe measures — entropy `0`,
    /// margin `1`, variation ratio `1`, argmax channel `0` — instead of
    /// propagating NaN into segment means. Well-formed inputs take the
    /// identity branch of the sanitiser, keeping the scan bit-identical.
    #[inline]
    pub fn of(dist: &[f64]) -> Self {
        let mut argmax = 0usize;
        let mut first = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        let mut raw_entropy = 0.0f64;
        // Softmax fields are value-sparse: most channels of a pixel share a
        // handful of distinct probabilities (a flat "noise floor" plus a few
        // peaks — and lossy wire encodings quantise onto a shared grid). A
        // two-entry memo keyed on the exact bit pattern reuses the entropy
        // term of repeated values; `ln` is deterministic per bit pattern, so
        // the accumulated sum is bit-identical to recomputing every term.
        let mut memo_bits = [u64::MAX; 2];
        let mut memo_term = [0.0f64; 2];
        for (channel, &p) in dist.iter().enumerate() {
            // Compare-and-select, not a branch: NaN/±∞ become 0.0 so a
            // dropout stripe cannot leave ±∞ sentinels in the top-2 search
            // or a NaN term in the entropy sum.
            let p = if p.is_finite() { p } else { 0.0 };
            if p > 0.0 && p != 1.0 {
                let bits = p.to_bits();
                let term = if memo_bits[0] == bits {
                    memo_term[0]
                } else if memo_bits[1] == bits {
                    // Promote: keep the two most recent distinct values.
                    memo_bits.swap(0, 1);
                    memo_term.swap(0, 1);
                    memo_term[0]
                } else {
                    let term = -p * p.ln();
                    memo_bits[1] = memo_bits[0];
                    memo_term[1] = memo_term[0];
                    memo_bits[0] = bits;
                    memo_term[0] = term;
                    term
                };
                raw_entropy += term;
            }
            if p > first {
                second = first;
                first = p;
                argmax = channel;
            } else if p > second {
                second = p;
            }
        }
        if dist.len() == 1 {
            second = 0.0;
        }
        Self {
            argmax,
            top1: first,
            top2: second,
            raw_entropy,
        }
    }

    /// Normalised Shannon entropy `E_z ∈ [0, 1]` for a `num_classes`-way
    /// distribution.
    #[inline]
    pub fn entropy(&self, num_classes: usize) -> f64 {
        (self.raw_entropy / (num_classes as f64).ln()).clamp(0.0, 1.0)
    }

    /// Probability margin `D_z = 1 - (p_(1) - p_(2)) ∈ [0, 1]`.
    #[inline]
    pub fn margin(&self) -> f64 {
        (1.0 - (self.top1 - self.top2)).clamp(0.0, 1.0)
    }

    /// Variation ratio `V_z = 1 - p_(1) ∈ [0, 1]`.
    #[inline]
    pub fn variation_ratio(&self) -> f64 {
        (1.0 - self.top1).clamp(0.0, 1.0)
    }
}

/// Fast natural logarithm for non-negative finite `f32` inputs.
///
/// Splits the float into exponent and mantissa by bit manipulation, folds
/// mantissas above `√2` down one octave, and evaluates the odd atanh series
/// `ln m = 2 atanh((m-1)/(m+1))` truncated after the `z⁷` term; absolute
/// error stays below `~1e-6` over the unit interval (dominated by the
/// `exponent · ln 2` rounding at tiny inputs), and the entropy term
/// `p · ln p` the dispersion scan derives from it stays within `~1e-7` of
/// libm. `+0.0` maps to a large
/// *finite* negative value (`≈ -88`), so `p * fast_ln_positive_f32(p)`
/// vanishes at `p = 0` without a branch — the property the branch-free f32
/// dispersion scan relies on. Negative, infinite or NaN inputs yield
/// unspecified finite-or-NaN garbage; callers clamp derived measures.
#[inline]
pub fn fast_ln_positive_f32(x: f32) -> f32 {
    let bits = x.to_bits();
    let mut exponent = ((bits >> 23) as i32) - 127;
    let mut mantissa = f32::from_bits((bits & 0x007f_ffff) | 0x3f80_0000);
    // Fold m ∈ (√2, 2) to m/2 so the series argument z = (m-1)/(m+1) stays
    // within |z| ≤ 0.172 (truncation error ≤ 2/9 · z⁹ ≈ 3e-8).
    if mantissa > std::f32::consts::SQRT_2 {
        mantissa *= 0.5;
        exponent += 1;
    }
    let z = (mantissa - 1.0) / (mantissa + 1.0);
    let z2 = z * z;
    let series = z * (2.0 + z2 * (2.0 / 3.0 + z2 * (2.0 / 5.0 + z2 * (2.0 / 7.0))));
    exponent as f32 * std::f32::consts::LN_2 + series
}

/// Single-precision counterpart of [`DistributionScan`] — the opt-in f32
/// dispersion fast path.
///
/// Unlike the f64 scan, whose entropy memo and comparison chain exist for
/// bit-exact compatibility with the historical kernel, this scan is written
/// branch-free so the compiler can vectorise it: the entropy term uses
/// [`fast_ln_positive_f32`] unconditionally (zero probabilities contribute
/// `-0.0`), and the top-2 search is a pair of min/max updates. Results track
/// the f64 scan within the documented `~1e-5` absolute error of the fast
/// logarithm; tie-breaking ("first maximum wins") is identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionScanF32 {
    /// Channel of the largest probability; ties resolve to the lowest
    /// channel index (the first maximum encountered wins).
    pub argmax: usize,
    /// Largest probability.
    pub top1: f32,
    /// Second largest probability (`0.0` for single-channel distributions).
    pub top2: f32,
    /// Un-normalised entropy `Σ -p ln p`, summed in channel order with the
    /// fast logarithm.
    pub raw_entropy: f32,
}

impl DistributionScanF32 {
    /// Scans a probability vector once, branch-free.
    ///
    /// Non-finite channel values degrade to probability `0.0`, mirroring
    /// [`DistributionScan::of`]: a dropout pixel yields the defined
    /// all-zero-stripe measures rather than a NaN that would poison every
    /// segment mean it is folded into.
    #[inline]
    pub fn of(dist: &[f32]) -> Self {
        let mut argmax = 0usize;
        let mut first = f32::NEG_INFINITY;
        let mut second = f32::NEG_INFINITY;
        let mut raw_entropy = 0.0f32;
        for (channel, &p) in dist.iter().enumerate() {
            // Compare-and-select dropout sanitiser; identity on well-formed
            // input, so the scan stays vectorisable and bit-stable.
            let p = if p.is_finite() { p } else { 0.0 };
            // fast_ln(0) is finite, so the p = 0 term is -0.0 — no branch.
            raw_entropy -= p * fast_ln_positive_f32(p);
            let prev = first;
            first = prev.max(p);
            second = second.max(p.min(prev));
            if p > prev {
                argmax = channel;
            }
        }
        if dist.len() == 1 {
            second = 0.0;
        }
        Self {
            argmax,
            top1: first,
            top2: second,
            raw_entropy,
        }
    }

    /// Normalised Shannon entropy `E_z ∈ [0, 1]` for a `num_classes`-way
    /// distribution.
    #[inline]
    pub fn entropy(&self, num_classes: usize) -> f32 {
        (self.raw_entropy / (num_classes as f32).ln()).clamp(0.0, 1.0)
    }

    /// Probability margin `D_z = 1 - (p_(1) - p_(2)) ∈ [0, 1]`.
    #[inline]
    pub fn margin(&self) -> f32 {
        (1.0 - (self.top1 - self.top2)).clamp(0.0, 1.0)
    }

    /// Variation ratio `V_z = 1 - p_(1) ∈ [0, 1]`.
    #[inline]
    pub fn variation_ratio(&self) -> f32 {
        (1.0 - self.top1).clamp(0.0, 1.0)
    }
}

/// A dense per-pixel softmax field `f_z(y | x, w)`.
///
/// For every pixel `z` the map stores one probability per *evaluated*
/// semantic class (void has no channel), in class-id order. This is the only
/// thing MetaSeg ever needs from the segmentation network.
///
/// ```
/// use metaseg_data::{ProbMap, SemanticClass};
///
/// let num_classes = 19;
/// let mut probs = ProbMap::uniform(4, 2, num_classes);
/// assert!((probs.prob_at(0, 0, SemanticClass::Road) - 1.0 / 19.0).abs() < 1e-12);
/// let onehot: Vec<f64> = (0..19).map(|i| if i == 13 { 1.0 } else { 0.0 }).collect();
/// probs.set_distribution(1, 1, &onehot).unwrap();
/// assert_eq!(probs.argmax_class(1, 1), SemanticClass::Car);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbMap {
    width: usize,
    height: usize,
    num_classes: usize,
    /// Row-major, pixel-major storage: `data[(y * width + x) * num_classes + c]`.
    data: Vec<f64>,
}

impl ProbMap {
    /// Creates a field where every pixel carries the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the class count is zero.
    pub fn uniform(width: usize, height: usize, num_classes: usize) -> Self {
        assert!(
            width > 0 && height > 0 && num_classes > 0,
            "dimensions and class count must be non-zero"
        );
        Self {
            width,
            height,
            num_classes,
            data: vec![1.0 / num_classes as f64; width * height * num_classes],
        }
    }

    /// Creates a field that puts probability one on the class of `labels` at
    /// every pixel (void pixels get a uniform distribution). Useful for
    /// turning a hard prediction into a degenerate softmax field.
    pub fn one_hot(labels: &LabelMap, num_classes: usize) -> Self {
        let mut map = Self::uniform(labels.width(), labels.height(), num_classes);
        for y in 0..labels.height() {
            for x in 0..labels.width() {
                let class = labels.class_at(x, y);
                if !class.is_evaluated() {
                    continue;
                }
                let mut dist = vec![0.0; num_classes];
                dist[class.id() as usize] = 1.0;
                map.set_distribution_unchecked(x, y, &dist);
            }
        }
        map
    }

    /// Width of the field.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the field.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Shape as `(width, height)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of softmax channels (evaluated classes).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    #[inline]
    fn offset(&self, x: usize, y: usize) -> usize {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x}, {y}) out of bounds for {}x{} probability map",
            self.width,
            self.height
        );
        (y * self.width + x) * self.num_classes
    }

    /// The probability vector at pixel `(x, y)` (one entry per evaluated class).
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the field.
    pub fn distribution(&self, x: usize, y: usize) -> &[f64] {
        let off = self.offset(x, y);
        &self.data[off..off + self.num_classes]
    }

    /// Probability of `class` at pixel `(x, y)` (0 for void / out-of-range channels).
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the field.
    pub fn prob_at(&self, x: usize, y: usize, class: SemanticClass) -> f64 {
        let channel = class.id() as usize;
        if channel >= self.num_classes {
            return 0.0;
        }
        self.distribution(x, y)[channel]
    }

    /// Overwrites the probability vector at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::WrongClassCount`] if `probs` has the wrong length
    /// and [`DataError::NotADistribution`] if it has negative entries or does
    /// not sum to one within `1e-6`.
    pub fn set_distribution(&mut self, x: usize, y: usize, probs: &[f64]) -> Result<(), DataError> {
        if probs.len() != self.num_classes {
            return Err(DataError::WrongClassCount {
                expected: self.num_classes,
                found: probs.len(),
            });
        }
        let sum: f64 = probs.iter().sum();
        if probs.iter().any(|p| *p < 0.0) || (sum - 1.0).abs() > DISTRIBUTION_TOLERANCE {
            return Err(DataError::NotADistribution { sum });
        }
        self.set_distribution_unchecked(x, y, probs);
        Ok(())
    }

    /// Overwrites the probability vector at `(x, y)` without validation.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the field or `probs` has the wrong length.
    pub fn set_distribution_unchecked(&mut self, x: usize, y: usize, probs: &[f64]) {
        assert_eq!(
            probs.len(),
            self.num_classes,
            "wrong number of class probabilities"
        );
        let off = self.offset(x, y);
        self.data[off..off + self.num_classes].copy_from_slice(probs);
    }

    /// Scans the distribution at `(x, y)` once, yielding argmax, top-2 and
    /// entropy simultaneously — the per-pixel primitive of the extraction
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the field.
    pub fn scan_at(&self, x: usize, y: usize) -> DistributionScan {
        DistributionScan::of(self.distribution(x, y))
    }

    /// Iterates the per-pixel probability vectors in storage (row-major,
    /// pixel-major) order. This is the linear access path of the fused
    /// extraction scan: no per-pixel offset arithmetic or bounds checks.
    pub fn distributions(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.num_classes)
    }

    /// The flat backing buffer in storage order
    /// (`data[(y * width + x) * num_classes + c]`).
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Index of the most probable channel at `(x, y)` (ties resolve to the
    /// lowest class id, matching `argmax`).
    pub fn argmax_channel(&self, x: usize, y: usize) -> usize {
        self.scan_at(x, y).argmax
    }

    /// The maximum a-posteriori (Bayes) class at `(x, y)`.
    pub fn argmax_class(&self, x: usize, y: usize) -> SemanticClass {
        SemanticClass::from_id(self.argmax_channel(x, y) as u16)
            .expect("channel index is a valid class id")
    }

    /// The Bayes/MAP predicted label map (`argmax` at every pixel).
    pub fn argmax_map(&self) -> LabelMap {
        LabelMap::from_fn(self.width, self.height, |x, y| self.argmax_class(x, y))
    }

    /// Largest and second largest probability at `(x, y)`.
    pub fn top2(&self, x: usize, y: usize) -> (f64, f64) {
        let scan = self.scan_at(x, y);
        (scan.top1, scan.top2)
    }

    /// Normalised Shannon entropy at `(x, y)`:
    /// `E_z = -1/log(q) * Σ_y f_z(y) log f_z(y)` ∈ [0, 1].
    pub fn entropy_at(&self, x: usize, y: usize) -> f64 {
        self.scan_at(x, y).entropy(self.num_classes)
    }

    /// Probability margin at `(x, y)`: `D_z = 1 - (p_(1) - p_(2))` ∈ [0, 1],
    /// large when the two best classes compete.
    pub fn margin_at(&self, x: usize, y: usize) -> f64 {
        self.scan_at(x, y).margin()
    }

    /// Variation ratio at `(x, y)`: `V_z = 1 - p_(1)` ∈ [0, 1].
    pub fn variation_ratio_at(&self, x: usize, y: usize) -> f64 {
        self.scan_at(x, y).variation_ratio()
    }

    /// Dense normalised-entropy heat map.
    pub fn entropy_map(&self) -> Grid<f64> {
        Grid::from_fn(self.width, self.height, |x, y| self.entropy_at(x, y))
    }

    /// Dense probability-margin heat map.
    pub fn margin_map(&self) -> Grid<f64> {
        Grid::from_fn(self.width, self.height, |x, y| self.margin_at(x, y))
    }

    /// Dense variation-ratio heat map.
    pub fn variation_ratio_map(&self) -> Grid<f64> {
        Grid::from_fn(self.width, self.height, |x, y| {
            self.variation_ratio_at(x, y)
        })
    }

    /// Structural integrity of a map that crossed a trust boundary (e.g. a
    /// wire-decoded payload): non-zero dimensions and a backing buffer of
    /// exactly `width * height * num_classes` values. Every accessor assumes
    /// this invariant, so servers must check it before touching a decoded
    /// map — probability *values* are intentionally not inspected here (use
    /// [`ProbMap::validate`] for that, at O(pixels) cost).
    pub fn shape_consistent(&self) -> bool {
        self.width > 0
            && self.height > 0
            && self.num_classes > 0
            && self
                .width
                .checked_mul(self.height)
                .and_then(|px| px.checked_mul(self.num_classes))
                == Some(self.data.len())
    }

    /// Checks that every pixel carries a valid probability distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NotADistribution`] for the first offending pixel.
    pub fn validate(&self) -> Result<(), DataError> {
        for y in 0..self.height {
            for x in 0..self.width {
                let dist = self.distribution(x, y);
                let sum: f64 = dist.iter().sum();
                if dist.iter().any(|p| *p < 0.0) || (sum - 1.0).abs() > 1e-4 {
                    return Err(DataError::NotADistribution { sum });
                }
            }
        }
        Ok(())
    }
}

/// On-the-wire value encodings of a [`ProbMap`] payload.
///
/// The byte-level codec ([`ProbPayload`]) stores the softmax field as a flat
/// little-endian value array in the map's native storage order (row-major,
/// pixel-major: `data[(y * width + x) * channels + c]`). Three encodings
/// trade wire size against fidelity:
///
/// * [`ProbEncoding::F64`] — 8 bytes/value, bit-exact: decoding recovers the
///   original field exactly, so downstream verdicts are bit-identical to the
///   in-process ones.
/// * [`ProbEncoding::F32`] — 4 bytes/value, rounds each probability to the
///   nearest `f32` (relative error ≤ 2⁻²⁴).
/// * [`ProbEncoding::U16`] — 2 bytes/value, quantizes `[0, 1]` onto a
///   65535-step grid (absolute error ≤ 2⁻¹⁷); values outside `[0, 1]`
///   (including NaN) clamp onto the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbEncoding {
    /// Little-endian `f64`, lossless.
    F64,
    /// Little-endian `f32`, rounded.
    F32,
    /// Little-endian `u16`, quantized onto `[0, 1] / 65535`.
    U16,
}

impl ProbEncoding {
    /// Bytes one probability value occupies on the wire.
    pub fn bytes_per_value(self) -> usize {
        match self {
            ProbEncoding::F64 => 8,
            ProbEncoding::F32 => 4,
            ProbEncoding::U16 => 2,
        }
    }

    /// Whether decoding recovers the original `f64` field bit-exactly.
    pub fn is_lossless(self) -> bool {
        matches!(self, ProbEncoding::F64)
    }

    /// The one-byte wire tag of the encoding.
    pub fn tag(self) -> u8 {
        match self {
            ProbEncoding::F64 => 0,
            ProbEncoding::F32 => 1,
            ProbEncoding::U16 => 2,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => ProbEncoding::F64,
            1 => ProbEncoding::F32,
            2 => ProbEncoding::U16,
            _ => return None,
        })
    }

    /// Human/CLI spelling of the encoding.
    pub fn name(self) -> &'static str {
        match self {
            ProbEncoding::F64 => "f64",
            ProbEncoding::F32 => "f32",
            ProbEncoding::U16 => "u16",
        }
    }

    /// Parses the CLI spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "f64" => ProbEncoding::F64,
            "f32" => ProbEncoding::F32,
            "u16" => ProbEncoding::U16,
            _ => return None,
        })
    }

    /// Total payload bytes of a `width` x `height` x `channels` field, or
    /// `None` when the shape has a zero dimension or the byte count
    /// overflows `usize`.
    pub fn payload_len(self, width: usize, height: usize, channels: usize) -> Option<usize> {
        if width == 0 || height == 0 || channels == 0 {
            return None;
        }
        width
            .checked_mul(height)?
            .checked_mul(channels)?
            .checked_mul(self.bytes_per_value())
    }
}

/// A [`ProbMap`] serialized to a flat byte payload plus the shape metadata
/// needed to decode it — the transport-agnostic half of a binary wire frame
/// (framing, sessions and checksums live in the transport layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbPayload {
    /// Width of the field in pixels.
    pub width: usize,
    /// Height of the field in pixels.
    pub height: usize,
    /// Softmax channels per pixel.
    pub channels: usize,
    /// Value encoding of `bytes`.
    pub encoding: ProbEncoding,
    /// The flat little-endian value array.
    pub bytes: Vec<u8>,
}

impl ProbPayload {
    /// Encodes a field. Infallible: every `ProbMap` upholds the shape
    /// invariant the payload records.
    pub fn encode(map: &ProbMap, encoding: ProbEncoding) -> Self {
        Self {
            width: map.width,
            height: map.height,
            channels: map.num_classes,
            encoding,
            bytes: map.payload_bytes(encoding),
        }
    }

    /// Decodes the payload back into a field.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidPayloadShape`] when the declared shape has
    /// a zero dimension or overflows, and [`DataError::PayloadSizeMismatch`]
    /// when `bytes` is shorter or longer than the shape implies. Never
    /// panics, whatever the bytes contain.
    pub fn decode(&self) -> Result<ProbMap, DataError> {
        ProbMap::from_payload_bytes(
            self.width,
            self.height,
            self.channels,
            self.encoding,
            &self.bytes,
        )
    }

    /// Validates the declared shape against the byte length, returning the
    /// number of probability values the payload holds.
    ///
    /// # Errors
    ///
    /// The same typed errors as [`ProbPayload::decode`].
    pub fn checked_value_count(&self) -> Result<usize, DataError> {
        let expected = self
            .encoding
            .payload_len(self.width, self.height, self.channels)
            .ok_or(DataError::InvalidPayloadShape {
                width: self.width,
                height: self.height,
                channels: self.channels,
            })?;
        if self.bytes.len() != expected {
            return Err(DataError::PayloadSizeMismatch {
                expected,
                found: self.bytes.len(),
            });
        }
        Ok(expected / self.encoding.bytes_per_value())
    }

    /// Dequantizes the payload straight into a reusable `f64` buffer
    /// (cleared first), without materialising a [`ProbMap`] — the zero-copy
    /// ingest path of the extraction kernel. The decoded values are
    /// *bit-identical* to [`ProbPayload::decode`]'s backing buffer: both
    /// routes share one decode loop per encoding.
    ///
    /// # Errors
    ///
    /// The same typed errors as [`ProbPayload::decode`].
    pub fn decode_values_into(&self, out: &mut Vec<f64>) -> Result<(), DataError> {
        let count = self.checked_value_count()?;
        out.clear();
        out.reserve(count);
        decode_values_f64(self.encoding, &self.bytes, out);
        Ok(())
    }

    /// Borrows a `U16` payload's quantized values *in place*, as the
    /// little-endian byte pairs of the wire buffer — no decode pass, no
    /// copy, no allocation. The caller dequantizes lazily at the point of
    /// use (the kernel's quantized fast path does it in-register during its
    /// tile gather). Returns `None` for float encodings, which have no
    /// quantized form; callers fall back to
    /// [`ProbPayload::decode_values_into_f32`].
    ///
    /// # Errors
    ///
    /// The same typed errors as [`ProbPayload::decode`].
    pub fn quantized_pairs(&self) -> Result<Option<&[[u8; 2]]>, DataError> {
        let count = self.checked_value_count()?;
        if self.encoding != ProbEncoding::U16 {
            return Ok(None);
        }
        let (pairs, rest) = self.bytes.as_chunks::<2>();
        debug_assert!(rest.is_empty() && pairs.len() == count);
        Ok(Some(pairs))
    }

    /// Dequantizes the payload into a reusable `f32` buffer (cleared first)
    /// — the single-precision fast-path variant of
    /// [`ProbPayload::decode_values_into`]. `u16` values dequantize by
    /// multiplication with `1/65535` (one ulp-level difference from the f64
    /// route's division), `f32` payloads copy bit-exactly, and `f64` values
    /// round to nearest.
    ///
    /// # Errors
    ///
    /// The same typed errors as [`ProbPayload::decode`].
    pub fn decode_values_into_f32(&self, out: &mut Vec<f32>) -> Result<(), DataError> {
        let count = self.checked_value_count()?;
        out.clear();
        out.reserve(count);
        match self.encoding {
            ProbEncoding::F64 => out.extend(self.bytes.chunks_exact(8).map(|c| {
                f64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")) as f32
            })),
            ProbEncoding::F32 => {
                out.extend(self.bytes.chunks_exact(4).map(|c| {
                    f32::from_le_bytes(c.try_into().expect("chunks_exact yields 4 bytes"))
                }))
            }
            ProbEncoding::U16 => {
                const SCALE: f32 = 1.0 / 65535.0;
                out.extend(self.bytes.chunks_exact(2).map(|c| {
                    f32::from(u16::from_le_bytes(
                        c.try_into().expect("chunks_exact yields 2 bytes"),
                    )) * SCALE
                }))
            }
        }
        Ok(())
    }
}

/// The one decode loop per encoding: both [`ProbMap::from_payload_bytes`]
/// and [`ProbPayload::decode_values_into`] append through here, so the
/// direct-to-scratch ingest path is bit-identical to decode-via-`ProbMap` by
/// construction. `bytes` must already be length-validated.
fn decode_values_f64(encoding: ProbEncoding, bytes: &[u8], out: &mut Vec<f64>) {
    match encoding {
        ProbEncoding::F64 => out.extend(
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes"))),
        ),
        ProbEncoding::F32 => out.extend(bytes.chunks_exact(4).map(|c| {
            f64::from(f32::from_le_bytes(
                c.try_into().expect("chunks_exact yields 4 bytes"),
            ))
        })),
        ProbEncoding::U16 => out.extend(bytes.chunks_exact(2).map(|c| {
            f64::from(u16::from_le_bytes(
                c.try_into().expect("chunks_exact yields 2 bytes"),
            )) / f64::from(u16::MAX)
        })),
    }
}

impl ProbMap {
    /// Serializes the field's values as a flat little-endian byte payload in
    /// storage order (see [`ProbEncoding`] for the fidelity of each mode).
    pub fn payload_bytes(&self, encoding: ProbEncoding) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.data.len() * encoding.bytes_per_value());
        self.extend_payload_bytes(encoding, &mut bytes);
        bytes
    }

    /// Appends the payload of [`ProbMap::payload_bytes`] to an existing
    /// buffer — transport encoders that prepend a header reserve one buffer
    /// and encode straight into it instead of copying the payload a second
    /// time.
    pub fn extend_payload_bytes(&self, encoding: ProbEncoding, bytes: &mut Vec<u8>) {
        bytes.reserve(self.data.len() * encoding.bytes_per_value());
        match encoding {
            ProbEncoding::F64 => {
                for value in &self.data {
                    bytes.extend_from_slice(&value.to_le_bytes());
                }
            }
            ProbEncoding::F32 => {
                for value in &self.data {
                    bytes.extend_from_slice(&(*value as f32).to_le_bytes());
                }
            }
            ProbEncoding::U16 => {
                for value in &self.data {
                    // NaN saturates to 0 through the float-to-int cast.
                    let quantized = (value.clamp(0.0, 1.0) * f64::from(u16::MAX)).round() as u16;
                    bytes.extend_from_slice(&quantized.to_le_bytes());
                }
            }
        }
    }

    /// Decodes a field from a flat little-endian byte payload.
    ///
    /// The inverse of [`ProbMap::payload_bytes`]: bit-exact for
    /// [`ProbEncoding::F64`], the documented rounding otherwise. Value
    /// *contents* are not validated (a wire peer can send any bits, exactly
    /// as with the JSON encoding) — consumers on a trust boundary should
    /// check [`ProbMap::shape_consistent`] / [`ProbMap::validate`] as
    /// appropriate.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidPayloadShape`] for zero/overflowing
    /// shapes and [`DataError::PayloadSizeMismatch`] when `bytes` has the
    /// wrong length. Never panics, whatever the bytes contain.
    pub fn from_payload_bytes(
        width: usize,
        height: usize,
        channels: usize,
        encoding: ProbEncoding,
        bytes: &[u8],
    ) -> Result<Self, DataError> {
        let expected = encoding.payload_len(width, height, channels).ok_or(
            DataError::InvalidPayloadShape {
                width,
                height,
                channels,
            },
        )?;
        if bytes.len() != expected {
            return Err(DataError::PayloadSizeMismatch {
                expected,
                found: bytes.len(),
            });
        }
        let mut data = Vec::with_capacity(expected / encoding.bytes_per_value());
        decode_values_f64(encoding, bytes, &mut data);
        Ok(Self {
            width,
            height,
            num_classes: channels,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn one_hot_vec(channel: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if i == channel { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn uniform_has_maximal_entropy() {
        let map = ProbMap::uniform(2, 2, 19);
        assert!((map.entropy_at(0, 0) - 1.0).abs() < 1e-9);
        assert!((map.margin_at(0, 0) - 1.0).abs() < 1e-9);
        assert!(map.validate().is_ok());
    }

    #[test]
    fn one_hot_has_zero_entropy() {
        let mut map = ProbMap::uniform(2, 2, 19);
        map.set_distribution(0, 0, &one_hot_vec(3, 19)).unwrap();
        assert!(map.entropy_at(0, 0).abs() < 1e-12);
        assert!(map.margin_at(0, 0).abs() < 1e-12);
        assert!(map.variation_ratio_at(0, 0).abs() < 1e-12);
        assert_eq!(map.argmax_class(0, 0), SemanticClass::Wall);
    }

    #[test]
    fn set_distribution_validates() {
        let mut map = ProbMap::uniform(2, 2, 3);
        assert!(matches!(
            map.set_distribution(0, 0, &[0.5, 0.5]),
            Err(DataError::WrongClassCount { .. })
        ));
        assert!(matches!(
            map.set_distribution(0, 0, &[0.5, 0.4, 0.4]),
            Err(DataError::NotADistribution { .. })
        ));
        assert!(matches!(
            map.set_distribution(0, 0, &[-0.1, 0.6, 0.5]),
            Err(DataError::NotADistribution { .. })
        ));
        assert!(map.set_distribution(0, 0, &[0.2, 0.3, 0.5]).is_ok());
    }

    #[test]
    fn argmax_map_and_one_hot_roundtrip() {
        let labels = LabelMap::from_fn(3, 3, |x, y| {
            if (x + y) % 2 == 0 {
                SemanticClass::Road
            } else {
                SemanticClass::Car
            }
        });
        let probs = ProbMap::one_hot(&labels, 19);
        let recovered = probs.argmax_map();
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(recovered.class_at(x, y), labels.class_at(x, y));
            }
        }
    }

    #[test]
    fn top2_orders_correctly() {
        let mut map = ProbMap::uniform(1, 1, 4);
        map.set_distribution(0, 0, &[0.1, 0.6, 0.25, 0.05]).unwrap();
        let (first, second) = map.top2(0, 0);
        assert!((first - 0.6).abs() < 1e-12);
        assert!((second - 0.25).abs() < 1e-12);
        assert!((map.margin_at(0, 0) - (1.0 - 0.35)).abs() < 1e-12);
        assert!((map.variation_ratio_at(0, 0) - 0.4).abs() < 1e-12);
    }

    /// Pins the tie-breaking of the fused scan exactly: with duplicated
    /// maxima the *first* maximum wins the argmax, and the second-largest
    /// value equals the maximum (the duplicate). This is the historical
    /// behaviour of the separate `argmax_channel` / `top2` loops, which are
    /// now both routed through [`DistributionScan`].
    #[test]
    fn fused_scan_tie_breaking_first_max_wins() {
        let mut map = ProbMap::uniform(1, 1, 4);
        map.set_distribution(0, 0, &[0.1, 0.4, 0.4, 0.1]).unwrap();
        assert_eq!(map.argmax_channel(0, 0), 1, "first maximum must win");
        let (first, second) = map.top2(0, 0);
        assert_eq!((first, second), (0.4, 0.4));
        assert!((map.margin_at(0, 0) - 1.0).abs() < 1e-15);

        // All-equal distribution: argmax is channel 0, top2 both maxima.
        let uniform = ProbMap::uniform(1, 1, 5);
        assert_eq!(uniform.argmax_channel(0, 0), 0);
        let (first, second) = uniform.top2(0, 0);
        assert_eq!(first, second);

        // Single-channel distribution: second is defined as 0.
        let single = ProbMap::uniform(1, 1, 1);
        assert_eq!(single.top2(0, 0), (1.0, 0.0));
        assert_eq!(single.argmax_channel(0, 0), 0);
    }

    /// The fused scan agrees with independent per-measure recomputation on
    /// random distributions (including the entropy summation order and the
    /// skip of exact-one entries, which contribute `-0.0`).
    #[test]
    fn fused_scan_matches_per_measure_definitions() {
        let dists: [&[f64]; 4] = [
            &[0.25, 0.5, 0.25],
            &[1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0],
            &[0.2, 0.2, 0.2, 0.2, 0.2],
        ];
        for dist in dists {
            let scan = DistributionScan::of(dist);
            // Fold from +0.0 in channel order — the accumulation the
            // extraction kernel has always used (`Iterator::sum` would start
            // from -0.0 and flip the sign of all-zero sums).
            let naive_raw: f64 = dist
                .iter()
                .filter(|p| **p > 0.0)
                .map(|p| -p * p.ln())
                .fold(0.0, |acc, term| acc + term);
            assert_eq!(scan.raw_entropy.to_bits(), naive_raw.to_bits());
            let naive_max = dist.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(scan.top1, naive_max);
            assert_eq!(dist[scan.argmax], naive_max);
        }
    }

    #[test]
    fn distributions_iterate_in_storage_order() {
        let mut map = ProbMap::uniform(2, 2, 3);
        map.set_distribution(1, 0, &[0.5, 0.25, 0.25]).unwrap();
        let rows: Vec<&[f64]> = map.distributions().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1], map.distribution(1, 0));
        assert_eq!(map.values().len(), 2 * 2 * 3);
        assert_eq!(&map.values()[3..6], map.distribution(1, 0));
    }

    #[test]
    fn heatmaps_have_field_shape() {
        let map = ProbMap::uniform(5, 3, 19);
        assert_eq!(map.entropy_map().shape(), (5, 3));
        assert_eq!(map.margin_map().shape(), (5, 3));
        assert_eq!(map.variation_ratio_map().shape(), (5, 3));
    }

    proptest! {
        #[test]
        fn prop_dispersion_measures_in_unit_interval(raw in proptest::collection::vec(0.01f64..10.0, 19)) {
            let sum: f64 = raw.iter().sum();
            let dist: Vec<f64> = raw.iter().map(|v| v / sum).collect();
            let mut map = ProbMap::uniform(1, 1, 19);
            map.set_distribution(0, 0, &dist).unwrap();
            let e = map.entropy_at(0, 0);
            let m = map.margin_at(0, 0);
            let v = map.variation_ratio_at(0, 0);
            prop_assert!((0.0..=1.0).contains(&e));
            prop_assert!((0.0..=1.0).contains(&m));
            prop_assert!((0.0..=1.0).contains(&v));
            // The variation ratio is at most the margin: 1 - p1 <= 1 - (p1 - p2).
            prop_assert!(v <= m + 1e-12);
        }

        #[test]
        fn prop_argmax_is_most_probable(raw in proptest::collection::vec(0.01f64..10.0, 19)) {
            let sum: f64 = raw.iter().sum();
            let dist: Vec<f64> = raw.iter().map(|v| v / sum).collect();
            let mut map = ProbMap::uniform(1, 1, 19);
            map.set_distribution(0, 0, &dist).unwrap();
            let argmax = map.argmax_channel(0, 0);
            for &p in &dist {
                prop_assert!(dist[argmax] >= p - 1e-15);
            }
        }
    }

    /// A map of the given shape filled with arbitrary (not necessarily
    /// normalized) values — the payload codec must not care about
    /// distribution validity.
    fn arbitrary_map(width: usize, height: usize, channels: usize, values: &[f64]) -> ProbMap {
        let mut map = ProbMap::uniform(width, height, channels);
        let mut cursor = values.iter().cycle();
        for y in 0..height {
            for x in 0..width {
                let dist: Vec<f64> = (0..channels).map(|_| *cursor.next().unwrap()).collect();
                map.set_distribution_unchecked(x, y, &dist);
            }
        }
        map
    }

    #[test]
    fn payload_roundtrips_f64_bit_exactly() {
        let map = arbitrary_map(
            3,
            2,
            4,
            &[0.25, 1.0 / 3.0, std::f64::consts::PI, -1.5e300, 0.0],
        );
        let payload = ProbPayload::encode(&map, ProbEncoding::F64);
        assert_eq!(payload.bytes.len(), 3 * 2 * 4 * 8);
        assert_eq!(payload.decode().unwrap(), map);
    }

    #[test]
    fn payload_sizes_follow_the_encoding() {
        let map = ProbMap::uniform(5, 3, 7);
        for (encoding, bytes_per_value) in [
            (ProbEncoding::F64, 8),
            (ProbEncoding::F32, 4),
            (ProbEncoding::U16, 2),
        ] {
            let payload = ProbPayload::encode(&map, encoding);
            assert_eq!(payload.bytes.len(), 5 * 3 * 7 * bytes_per_value);
            assert_eq!(payload.encoding.bytes_per_value(), bytes_per_value);
            let decoded = payload.decode().unwrap();
            assert!(decoded.shape_consistent());
            assert_eq!(decoded.shape(), (5, 3));
            assert_eq!(decoded.num_classes(), 7);
        }
    }

    #[test]
    fn quantized_encodings_have_documented_error_bounds() {
        let mut map = ProbMap::uniform(2, 1, 3);
        map.set_distribution(0, 0, &[0.1, 0.7, 0.2]).unwrap();
        let f32_decoded = ProbPayload::encode(&map, ProbEncoding::F32)
            .decode()
            .unwrap();
        let u16_decoded = ProbPayload::encode(&map, ProbEncoding::U16)
            .decode()
            .unwrap();
        for y in 0..1 {
            for x in 0..2 {
                for c in 0..3 {
                    let exact = map.distribution(x, y)[c];
                    assert!((f32_decoded.distribution(x, y)[c] - exact).abs() <= exact * 1e-7);
                    assert!((u16_decoded.distribution(x, y)[c] - exact).abs() <= 0.5 / 65535.0);
                }
            }
        }
        // NaN saturates onto the grid instead of poisoning the payload.
        let mut map = ProbMap::uniform(1, 1, 2);
        map.set_distribution_unchecked(0, 0, &[f64::NAN, 2.0]);
        let decoded = ProbPayload::encode(&map, ProbEncoding::U16)
            .decode()
            .unwrap();
        assert_eq!(decoded.distribution(0, 0), &[0.0, 1.0]);
    }

    #[test]
    fn payload_decode_rejects_bad_shapes_and_sizes_with_typed_errors() {
        let bytes = vec![0u8; 16];
        // Zero dimensions.
        for (w, h, c) in [(0, 1, 2), (1, 0, 2), (1, 1, 0)] {
            assert!(matches!(
                ProbMap::from_payload_bytes(w, h, c, ProbEncoding::F64, &bytes),
                Err(DataError::InvalidPayloadShape { .. })
            ));
        }
        // Overflowing shape: the byte count must be computed checked.
        assert!(matches!(
            ProbMap::from_payload_bytes(usize::MAX, 2, 3, ProbEncoding::U16, &bytes),
            Err(DataError::InvalidPayloadShape { .. })
        ));
        // Truncated and padded payloads.
        assert!(matches!(
            ProbMap::from_payload_bytes(1, 1, 2, ProbEncoding::F64, &bytes[..15]),
            Err(DataError::PayloadSizeMismatch {
                expected: 16,
                found: 15
            })
        ));
        assert!(matches!(
            ProbMap::from_payload_bytes(1, 1, 2, ProbEncoding::U16, &bytes),
            Err(DataError::PayloadSizeMismatch {
                expected: 4,
                found: 16
            })
        ));
    }

    #[test]
    fn fast_ln_is_accurate_on_the_probability_range() {
        // The fast logarithm must track libm on the probability range the
        // dispersion scan feeds it: the raw value within 2e-6 (the
        // exponent·ln2 rounding dominates at tiny inputs), and the entropy
        // term p·ln p — what the scan actually accumulates — within 2e-7.
        let mut worst_ln = 0.0f32;
        let mut worst_term = 0.0f32;
        for i in 1..=100_000u32 {
            let x = i as f32 / 100_000.0;
            worst_ln = worst_ln.max((fast_ln_positive_f32(x) - x.ln()).abs());
            worst_term = worst_term.max((x * fast_ln_positive_f32(x) - x * x.ln()).abs());
        }
        assert!(worst_ln <= 2e-6, "fast ln error {worst_ln} exceeds 2e-6");
        assert!(
            worst_term <= 2e-7,
            "entropy term error {worst_term} exceeds 2e-7"
        );
        // Zero maps to a finite negative value so p·ln(p) vanishes at 0.
        let at_zero = fast_ln_positive_f32(0.0);
        assert!(at_zero.is_finite() && at_zero < -80.0);
        assert_eq!(0.0f32 * at_zero, -0.0);
    }

    #[test]
    fn f32_scan_tracks_the_f64_scan() {
        let dists: [&[f64]; 5] = [
            &[0.25, 0.5, 0.25],
            &[1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0],
            &[0.2, 0.2, 0.2, 0.2, 0.2],
            &[0.05, 0.6, 0.3, 0.05],
        ];
        for dist in dists {
            let exact = DistributionScan::of(dist);
            let narrowed: Vec<f32> = dist.iter().map(|&p| p as f32).collect();
            let fast = DistributionScanF32::of(&narrowed);
            assert_eq!(fast.argmax, exact.argmax);
            let n = dist.len();
            assert!((f64::from(fast.entropy(n)) - exact.entropy(n)).abs() <= 1e-5);
            assert!((f64::from(fast.margin()) - exact.margin()).abs() <= 1e-5);
            assert!((f64::from(fast.variation_ratio()) - exact.variation_ratio()).abs() <= 1e-5);
            assert!((f64::from(fast.top1) - exact.top1).abs() <= 1e-6);
        }
    }

    #[test]
    fn f32_scan_tie_breaking_matches_the_f64_scan() {
        // First maximum wins, exactly like the f64 scan.
        let scan = DistributionScanF32::of(&[0.1, 0.4, 0.4, 0.1]);
        assert_eq!(scan.argmax, 1);
        assert_eq!((scan.top1, scan.top2), (0.4, 0.4));
        // Single-channel distributions define top2 as zero.
        let single = DistributionScanF32::of(&[1.0]);
        assert_eq!((single.argmax, single.top1, single.top2), (0, 1.0, 0.0));
    }

    #[test]
    fn decode_values_into_is_bit_identical_to_decode() {
        let map = arbitrary_map(3, 2, 4, &[0.25, 1.0 / 3.0, std::f64::consts::PI, 0.75, 0.0]);
        let mut out = vec![1.0; 3]; // stale content must be cleared
        for encoding in [ProbEncoding::F64, ProbEncoding::F32, ProbEncoding::U16] {
            let payload = ProbPayload::encode(&map, encoding);
            assert_eq!(payload.checked_value_count().unwrap(), 3 * 2 * 4);
            payload.decode_values_into(&mut out).unwrap();
            assert_eq!(out.as_slice(), payload.decode().unwrap().values());
        }
    }

    #[test]
    fn decode_values_into_rejects_malformed_payloads() {
        let mut payload = ProbPayload::encode(&ProbMap::uniform(2, 2, 3), ProbEncoding::U16);
        payload.bytes.pop();
        let mut f64_out = Vec::new();
        let mut f32_out = Vec::new();
        assert!(matches!(
            payload.decode_values_into(&mut f64_out),
            Err(DataError::PayloadSizeMismatch { .. })
        ));
        assert!(matches!(
            payload.decode_values_into_f32(&mut f32_out),
            Err(DataError::PayloadSizeMismatch { .. })
        ));
        assert!(matches!(
            payload.quantized_pairs(),
            Err(DataError::PayloadSizeMismatch { .. })
        ));
        payload.width = 0;
        assert!(matches!(
            payload.decode_values_into(&mut f64_out),
            Err(DataError::InvalidPayloadShape { .. })
        ));
    }

    #[test]
    fn quantized_pairs_borrows_quantized_values_only() {
        let map = ProbMap::uniform(3, 2, 4);
        let quantized = ProbPayload::encode(&map, ProbEncoding::U16);
        let pairs = quantized.quantized_pairs().unwrap().expect("u16 payload");
        assert_eq!(pairs.len(), 3 * 2 * 4);
        // Round-tripping each raw value through the shared f64 decode
        // formula reproduces the decoded plane bit for bit.
        let decoded = quantized.decode().unwrap();
        for (&pair, &v) in pairs.iter().zip(decoded.values()) {
            assert_eq!(f64::from(u16::from_le_bytes(pair)) / f64::from(u16::MAX), v);
        }
        // Float encodings have no quantized form.
        for encoding in [ProbEncoding::F64, ProbEncoding::F32] {
            let float_payload = ProbPayload::encode(&map, encoding);
            assert!(float_payload.quantized_pairs().unwrap().is_none());
        }
    }

    proptest! {
        #[test]
        fn prop_decode_values_into_matches_decode(
            dims in (1usize..5, 1usize..4, 1usize..6),
            values in proptest::collection::vec(0.0f64..=1.0, 24),
            tag in 0u8..3
        ) {
            let (width, height, channels) = dims;
            let encoding = ProbEncoding::from_tag(tag).unwrap();
            let payload = ProbPayload::encode(
                &arbitrary_map(width, height, channels, &values),
                encoding,
            );
            let via_map = payload.decode().unwrap();
            let mut direct = Vec::new();
            payload.decode_values_into(&mut direct).unwrap();
            prop_assert_eq!(direct.as_slice(), via_map.values());
            // The f32 route tracks the f64 route within quantization noise.
            let mut narrow = Vec::new();
            payload.decode_values_into_f32(&mut narrow).unwrap();
            prop_assert_eq!(narrow.len(), direct.len());
            for (&n, &d) in narrow.iter().zip(&direct) {
                prop_assert!((f64::from(n) - d).abs() <= 1e-6);
            }
        }
    }

    #[test]
    fn encoding_tags_and_names_roundtrip() {
        for encoding in [ProbEncoding::F64, ProbEncoding::F32, ProbEncoding::U16] {
            assert_eq!(ProbEncoding::from_tag(encoding.tag()), Some(encoding));
            assert_eq!(ProbEncoding::from_name(encoding.name()), Some(encoding));
            assert_eq!(encoding.is_lossless(), encoding == ProbEncoding::F64);
        }
        assert_eq!(ProbEncoding::from_tag(3), None);
        assert_eq!(ProbEncoding::from_name("f16"), None);
    }

    proptest! {
        #[test]
        fn prop_f64_payload_roundtrips_exactly(
            dims in (1usize..5, 1usize..4, 1usize..6),
            values in proptest::collection::vec(-1.0f64..2.0, 24)
        ) {
            let (width, height, channels) = dims;
            let map = arbitrary_map(width, height, channels, &values);
            let payload = ProbPayload::encode(&map, ProbEncoding::F64);
            prop_assert_eq!(payload.decode().unwrap(), map);
        }

        #[test]
        fn prop_lossy_payloads_are_idempotent(
            dims in (1usize..5, 1usize..4, 1usize..6),
            values in proptest::collection::vec(0.0f64..=1.0, 24),
            use_u16 in any::<bool>()
        ) {
            let (width, height, channels) = dims;
            // Lossy encodings must converge after one round: decoding and
            // re-encoding reproduces the same bytes (no drift under relay).
            let encoding = if use_u16 { ProbEncoding::U16 } else { ProbEncoding::F32 };
            let map = arbitrary_map(width, height, channels, &values);
            let first = ProbPayload::encode(&map, encoding);
            let second = ProbPayload::encode(&first.decode().unwrap(), encoding);
            prop_assert_eq!(&first, &second);
        }

        #[test]
        fn prop_payload_decode_never_panics(
            dims in (0usize..6, 0usize..5, 0usize..5),
            bytes in proptest::collection::vec(0u8..=255, 0..64),
            tag in 0u8..4
        ) {
            let (width, height, channels) = dims;
            let Some(encoding) = ProbEncoding::from_tag(tag) else { return Ok(()); };
            // Arbitrary declared shapes against arbitrary bytes: either a
            // structurally sound map or a typed error, never a panic.
            match ProbMap::from_payload_bytes(width, height, channels, encoding, &bytes) {
                Ok(map) => prop_assert!(map.shape_consistent()),
                Err(
                    DataError::InvalidPayloadShape { .. } | DataError::PayloadSizeMismatch { .. },
                ) => {}
                Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
            }
        }
    }
}
