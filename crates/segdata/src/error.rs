//! Error type for the data-model crate.

use metaseg_imgproc::GridError;
use std::fmt;

/// Errors produced when constructing or combining segmentation data objects.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// The underlying grid operation failed.
    Grid(GridError),
    /// A probability vector did not have one entry per semantic class.
    WrongClassCount {
        /// Number of classes expected by the catalogue.
        expected: usize,
        /// Number of probabilities provided.
        found: usize,
    },
    /// A probability vector does not sum to one (within tolerance) or
    /// contains negative entries.
    NotADistribution {
        /// The offending sum.
        sum: f64,
    },
    /// Ground truth and prediction shapes differ inside one frame.
    FrameShapeMismatch {
        /// Ground-truth shape.
        ground_truth: (usize, usize),
        /// Prediction shape.
        prediction: (usize, usize),
    },
    /// A class id outside the catalogue was encountered.
    UnknownClassId(u16),
    /// Split ratios do not sum to one or contain negative entries.
    InvalidSplit {
        /// Sum of the provided ratios.
        sum: f64,
    },
    /// An operation that needs at least one element got an empty collection.
    EmptyCollection(&'static str),
    /// A declared payload shape is unusable: a zero dimension, or a pixel /
    /// byte count that overflows `usize` when multiplied out.
    InvalidPayloadShape {
        /// Declared width in pixels.
        width: usize,
        /// Declared height in pixels.
        height: usize,
        /// Declared softmax channels per pixel.
        channels: usize,
    },
    /// A byte payload's length does not match the size implied by its
    /// declared shape and value encoding.
    PayloadSizeMismatch {
        /// Bytes implied by the declared shape and encoding.
        expected: usize,
        /// Bytes actually provided.
        found: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Grid(e) => write!(f, "grid error: {e}"),
            DataError::WrongClassCount { expected, found } => write!(
                f,
                "probability vector has {found} entries, expected {expected} classes"
            ),
            DataError::NotADistribution { sum } => {
                write!(f, "probability vector sums to {sum}, expected 1.0")
            }
            DataError::FrameShapeMismatch {
                ground_truth,
                prediction,
            } => write!(
                f,
                "ground truth shape {}x{} differs from prediction shape {}x{}",
                ground_truth.0, ground_truth.1, prediction.0, prediction.1
            ),
            DataError::UnknownClassId(id) => write!(f, "unknown semantic class id {id}"),
            DataError::InvalidSplit { sum } => {
                write!(
                    f,
                    "split ratios must be non-negative and sum to 1, got sum {sum}"
                )
            }
            DataError::EmptyCollection(what) => write!(f, "{what} must not be empty"),
            DataError::InvalidPayloadShape {
                width,
                height,
                channels,
            } => write!(
                f,
                "payload shape {width}x{height}x{channels} has a zero dimension \
                 or overflows the addressable size"
            ),
            DataError::PayloadSizeMismatch { expected, found } => write!(
                f,
                "payload holds {found} bytes but its declared shape requires {expected}"
            ),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Grid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GridError> for DataError {
    fn from(value: GridError) -> Self {
        DataError::Grid(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_relevant_numbers() {
        let err = DataError::WrongClassCount {
            expected: 20,
            found: 3,
        };
        assert!(err.to_string().contains("20"));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn grid_error_converts() {
        let g = GridError::EmptyGrid;
        let d: DataError = g.clone().into();
        assert_eq!(d, DataError::Grid(g));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
