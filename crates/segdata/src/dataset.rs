//! Datasets and video sequences of frames.

use crate::error::DataError;
use crate::frame::Frame;
use serde::{Deserialize, Serialize};

/// Train/validation/test split ratios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitRatios {
    /// Fraction of elements assigned to the training split.
    pub train: f64,
    /// Fraction of elements assigned to the validation split.
    pub validation: f64,
    /// Fraction of elements assigned to the test split.
    pub test: f64,
}

impl SplitRatios {
    /// Creates a split after validating the ratios.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSplit`] if any ratio is negative or the
    /// ratios do not sum to one within `1e-9`.
    pub fn new(train: f64, validation: f64, test: f64) -> Result<Self, DataError> {
        let sum = train + validation + test;
        if train < 0.0 || validation < 0.0 || test < 0.0 || (sum - 1.0).abs() > 1e-9 {
            return Err(DataError::InvalidSplit { sum });
        }
        Ok(Self {
            train,
            validation,
            test,
        })
    }

    /// The paper's 80/0/20 meta train/test split (Section II).
    pub fn meta_80_20() -> Self {
        Self {
            train: 0.8,
            validation: 0.0,
            test: 0.2,
        }
    }

    /// The paper's 70/10/20 split for the KITTI-style video experiments
    /// (Section III).
    pub fn video_70_10_20() -> Self {
        Self {
            train: 0.7,
            validation: 0.1,
            test: 0.2,
        }
    }

    /// Splits `count` indices (already shuffled by the caller if desired)
    /// into train/validation/test index ranges.
    pub fn split_indices(&self, count: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let train_end = (count as f64 * self.train).round() as usize;
        let val_end = train_end + (count as f64 * self.validation).round() as usize;
        let val_end = val_end.min(count);
        let train_end = train_end.min(val_end);
        let train = (0..train_end).collect();
        let validation = (train_end..val_end).collect();
        let test = (val_end..count).collect();
        (train, validation, test)
    }
}

/// An ordered video sequence of frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequence {
    /// Sequence index within its dataset.
    pub index: usize,
    /// Frames in temporal order.
    pub frames: Vec<Frame>,
}

impl Sequence {
    /// Creates a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyCollection`] for an empty frame list.
    pub fn new(index: usize, frames: Vec<Frame>) -> Result<Self, DataError> {
        if frames.is_empty() {
            return Err(DataError::EmptyCollection("sequence frames"));
        }
        Ok(Self { index, frames })
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the sequence has no frames (never true for constructed sequences).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Number of labelled frames.
    pub fn labeled_count(&self) -> usize {
        self.frames.iter().filter(|f| f.is_labeled()).count()
    }

    /// Indices of the labelled frames.
    pub fn labeled_indices(&self) -> Vec<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_labeled())
            .map(|(i, _)| i)
            .collect()
    }

    /// The frame at temporal position `t`, if it exists.
    pub fn frame(&self, t: usize) -> Option<&Frame> {
        self.frames.get(t)
    }
}

/// A dataset: a bag of sequences (single-image datasets use length-1 sequences).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// All sequences of the dataset.
    pub sequences: Vec<Sequence>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset of independent single frames (each becomes its own
    /// length-1 sequence).
    pub fn from_frames(frames: Vec<Frame>) -> Self {
        let sequences = frames
            .into_iter()
            .enumerate()
            .map(|(i, f)| Sequence {
                index: i,
                frames: vec![f],
            })
            .collect();
        Self { sequences }
    }

    /// Adds a sequence.
    pub fn push_sequence(&mut self, sequence: Sequence) {
        self.sequences.push(sequence);
    }

    /// Number of sequences.
    pub fn sequence_count(&self) -> usize {
        self.sequences.len()
    }

    /// Total number of frames over all sequences.
    pub fn frame_count(&self) -> usize {
        self.sequences.iter().map(Sequence::len).sum()
    }

    /// Total number of labelled frames over all sequences.
    pub fn labeled_frame_count(&self) -> usize {
        self.sequences.iter().map(Sequence::labeled_count).sum()
    }

    /// Iterator over all frames of all sequences in order.
    pub fn iter_frames(&self) -> impl Iterator<Item = &Frame> {
        self.sequences.iter().flat_map(|s| s.frames.iter())
    }

    /// Iterator over all labelled frames.
    pub fn iter_labeled_frames(&self) -> impl Iterator<Item = &Frame> {
        self.iter_frames().filter(|f| f.is_labeled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SemanticClass;
    use crate::frame::FrameId;
    use crate::labelmap::LabelMap;
    use crate::probmap::ProbMap;

    fn frame(seq: usize, idx: usize, labeled: bool) -> Frame {
        let probs = ProbMap::uniform(4, 4, 19);
        if labeled {
            let gt = LabelMap::filled(4, 4, SemanticClass::Road);
            Frame::labeled(FrameId::new(seq, idx), gt, probs).unwrap()
        } else {
            Frame::unlabeled(FrameId::new(seq, idx), probs)
        }
    }

    #[test]
    fn split_ratios_validate() {
        assert!(SplitRatios::new(0.7, 0.1, 0.2).is_ok());
        assert!(SplitRatios::new(0.7, 0.1, 0.3).is_err());
        assert!(SplitRatios::new(-0.1, 0.6, 0.5).is_err());
        let s = SplitRatios::meta_80_20();
        assert!((s.train + s.validation + s.test - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_indices_cover_everything_disjointly() {
        let s = SplitRatios::video_70_10_20();
        let (train, val, test) = s.split_indices(100);
        assert_eq!(train.len() + val.len() + test.len(), 100);
        assert_eq!(train.len(), 70);
        assert_eq!(val.len(), 10);
        assert_eq!(test.len(), 20);
        // Disjoint and covering 0..100.
        let mut all: Vec<usize> = train.into_iter().chain(val).chain(test).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_indices_handles_tiny_counts() {
        let s = SplitRatios::meta_80_20();
        for count in 0..6 {
            let (train, val, test) = s.split_indices(count);
            assert_eq!(train.len() + val.len() + test.len(), count);
        }
    }

    #[test]
    fn sequence_tracks_labeled_frames() {
        let frames = vec![frame(0, 0, true), frame(0, 1, false), frame(0, 2, true)];
        let seq = Sequence::new(0, frames).unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.labeled_count(), 2);
        assert_eq!(seq.labeled_indices(), vec![0, 2]);
        assert!(seq.frame(2).unwrap().is_labeled());
        assert!(seq.frame(3).is_none());
        assert!(Sequence::new(1, vec![]).is_err());
    }

    #[test]
    fn dataset_counts_frames() {
        let mut ds = Dataset::new();
        ds.push_sequence(Sequence::new(0, vec![frame(0, 0, true), frame(0, 1, false)]).unwrap());
        ds.push_sequence(Sequence::new(1, vec![frame(1, 0, false)]).unwrap());
        assert_eq!(ds.sequence_count(), 2);
        assert_eq!(ds.frame_count(), 3);
        assert_eq!(ds.labeled_frame_count(), 1);
        assert_eq!(ds.iter_labeled_frames().count(), 1);
    }

    #[test]
    fn dataset_from_frames_uses_singleton_sequences() {
        let ds = Dataset::from_frames(vec![frame(0, 0, true), frame(0, 1, true)]);
        assert_eq!(ds.sequence_count(), 2);
        assert_eq!(ds.frame_count(), 2);
    }
}
