//! Dense per-pixel class maps.

use crate::catalog::SemanticClass;
use crate::error::DataError;
use metaseg_imgproc::{connected_components, ComponentLabels, Connectivity, Grid};
use serde::{Deserialize, Serialize};

/// A dense per-pixel semantic class map (ground truth or predicted mask).
///
/// Internally stores the numeric class ids; the typed accessors convert to
/// and from [`SemanticClass`].
///
/// ```
/// use metaseg_data::{LabelMap, SemanticClass};
///
/// let mut map = LabelMap::filled(4, 4, SemanticClass::Road);
/// map.set(1, 1, SemanticClass::Car);
/// assert_eq!(map.class_at(1, 1), SemanticClass::Car);
/// assert_eq!(map.class_pixel_count(SemanticClass::Car), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelMap {
    ids: Grid<u16>,
}

impl LabelMap {
    /// Creates a map filled with a single class.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn filled(width: usize, height: usize, class: SemanticClass) -> Self {
        Self {
            ids: Grid::filled(width, height, class.id()),
        }
    }

    /// Builds a map by evaluating `f(x, y)` at every pixel.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> SemanticClass,
    ) -> Self {
        Self {
            ids: Grid::from_fn(width, height, |x, y| f(x, y).id()),
        }
    }

    /// Wraps a raw id grid.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownClassId`] if any id is outside the
    /// catalogue.
    pub fn from_ids(ids: Grid<u16>) -> Result<Self, DataError> {
        if let Some(&bad) = ids.iter().find(|&&id| SemanticClass::from_id(id).is_err()) {
            return Err(DataError::UnknownClassId(bad));
        }
        Ok(Self { ids })
    }

    /// Width of the map.
    pub fn width(&self) -> usize {
        self.ids.width()
    }

    /// Height of the map.
    pub fn height(&self) -> usize {
        self.ids.height()
    }

    /// Shape as `(width, height)`.
    pub fn shape(&self) -> (usize, usize) {
        self.ids.shape()
    }

    /// Number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.ids.len()
    }

    /// Class at pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the map.
    pub fn class_at(&self, x: usize, y: usize) -> SemanticClass {
        SemanticClass::from_id(*self.ids.get(x, y)).expect("label map contains only valid ids")
    }

    /// Sets the class at pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the map.
    pub fn set(&mut self, x: usize, y: usize, class: SemanticClass) {
        self.ids.set(x, y, class.id());
    }

    /// The raw class-id grid.
    pub fn ids(&self) -> &Grid<u16> {
        &self.ids
    }

    /// Number of pixels carrying the given class.
    pub fn class_pixel_count(&self, class: SemanticClass) -> usize {
        self.ids.count_equal(&class.id())
    }

    /// Boolean mask of pixels carrying the given class.
    pub fn class_mask(&self, class: SemanticClass) -> Grid<bool> {
        self.ids.mask_of(&class.id())
    }

    /// Fraction of pixels (excluding void) carrying the given class.
    pub fn class_fraction(&self, class: SemanticClass) -> f64 {
        let valid = self.pixel_count() - self.class_pixel_count(SemanticClass::Void);
        if valid == 0 {
            return 0.0;
        }
        self.class_pixel_count(class) as f64 / valid as f64
    }

    /// Connected components ("segments") of the map.
    ///
    /// Every connected set of equal-class pixels becomes one segment; this is
    /// the paper's instance notion for both predictions and ground truth.
    pub fn segments(&self, connectivity: Connectivity) -> ComponentLabels {
        connected_components(&self.ids, connectivity)
    }

    /// Pixel-count histogram over all classes (indexed by class id).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut histogram = vec![0usize; SemanticClass::ALL.len()];
        for id in self.ids.iter() {
            histogram[*id as usize] += 1;
        }
        histogram
    }

    /// Fraction of pixels where this map and `other` agree (void pixels in
    /// either map are skipped).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::FrameShapeMismatch`] if the shapes differ.
    pub fn pixel_accuracy(&self, other: &LabelMap) -> Result<f64, DataError> {
        if self.shape() != other.shape() {
            return Err(DataError::FrameShapeMismatch {
                ground_truth: self.shape(),
                prediction: other.shape(),
            });
        }
        let void = SemanticClass::Void.id();
        let mut total = 0usize;
        let mut agree = 0usize;
        for (a, b) in self.ids.iter().zip(other.ids.iter()) {
            if *a == void || *b == void {
                continue;
            }
            total += 1;
            if a == b {
                agree += 1;
            }
        }
        if total == 0 {
            return Ok(0.0);
        }
        Ok(agree as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn filled_and_set() {
        let mut map = LabelMap::filled(3, 2, SemanticClass::Sky);
        assert_eq!(map.class_pixel_count(SemanticClass::Sky), 6);
        map.set(0, 0, SemanticClass::Road);
        assert_eq!(map.class_at(0, 0), SemanticClass::Road);
        assert_eq!(map.class_pixel_count(SemanticClass::Sky), 5);
        assert_eq!(map.shape(), (3, 2));
    }

    #[test]
    fn from_ids_validates() {
        let good = Grid::filled(2, 2, 3u16);
        assert!(LabelMap::from_ids(good).is_ok());
        let bad = Grid::filled(2, 2, 77u16);
        assert_eq!(
            LabelMap::from_ids(bad).unwrap_err(),
            DataError::UnknownClassId(77)
        );
    }

    #[test]
    fn class_fraction_excludes_void() {
        let mut map = LabelMap::filled(2, 2, SemanticClass::Road);
        map.set(0, 0, SemanticClass::Void);
        map.set(1, 0, SemanticClass::Car);
        // 3 valid pixels: 2 road, 1 car.
        assert!((map.class_fraction(SemanticClass::Road) - 2.0 / 3.0).abs() < 1e-12);
        assert!((map.class_fraction(SemanticClass::Car) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn segments_split_classes() {
        let map = LabelMap::from_fn(4, 1, |x, _| {
            if x < 2 {
                SemanticClass::Road
            } else {
                SemanticClass::Car
            }
        });
        let segs = map.segments(Connectivity::Eight);
        assert_eq!(segs.component_count(), 2);
    }

    #[test]
    fn histogram_sums_to_pixel_count() {
        let map = LabelMap::from_fn(5, 4, |x, y| {
            if (x + y) % 2 == 0 {
                SemanticClass::Road
            } else {
                SemanticClass::Sky
            }
        });
        let histogram = map.class_histogram();
        assert_eq!(histogram.iter().sum::<usize>(), 20);
        assert_eq!(histogram[SemanticClass::Road.id() as usize], 10);
    }

    #[test]
    fn pixel_accuracy_ignores_void() {
        let gt = LabelMap::from_fn(4, 1, |x, _| {
            if x == 0 {
                SemanticClass::Void
            } else {
                SemanticClass::Road
            }
        });
        let mut pred = LabelMap::filled(4, 1, SemanticClass::Road);
        pred.set(1, 0, SemanticClass::Car);
        // Valid pixels: x = 1,2,3; correct at 2 of them.
        assert!((gt.pixel_accuracy(&pred).unwrap() - 2.0 / 3.0).abs() < 1e-12);

        let other = LabelMap::filled(2, 2, SemanticClass::Road);
        assert!(gt.pixel_accuracy(&other).is_err());
    }

    proptest! {
        #[test]
        fn prop_histogram_matches_counts(seed in 0u64..300) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let map = LabelMap::from_fn(9, 7, |_, _| {
                SemanticClass::ALL[rng.gen_range(0..20)]
            });
            let histogram = map.class_histogram();
            for class in SemanticClass::ALL {
                prop_assert_eq!(histogram[class.id() as usize], map.class_pixel_count(class));
            }
        }

        #[test]
        fn prop_accuracy_self_is_one_without_void(seed in 0u64..300) {
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let map = LabelMap::from_fn(6, 6, |_, _| {
                SemanticClass::ALL[rng.gen_range(0..19)] // exclude void
            });
            prop_assert!((map.pixel_accuracy(&map).unwrap() - 1.0).abs() < 1e-12);
        }
    }
}
