//! # metaseg-eval
//!
//! Evaluation metrics used throughout the MetaSeg reproduction:
//!
//! * binary classification quality: [`accuracy`], [`auroc`],
//!   [`ConfusionCounts`], precision/recall/F1,
//! * regression quality: [`r_squared`], [`residual_sigma`],
//!   [`pearson_correlation`], mean absolute error,
//! * distribution comparison: [`EmpiricalCdf`] and first-order
//!   [`stochastic dominance`](EmpiricalCdf::stochastically_dominates),
//! * aggregation over repeated runs: [`RunStatistics`] (the "averaged over 10
//!   runs (± std)" columns of the paper's tables).
//!
//! ```
//! use metaseg_eval::{auroc, r_squared};
//!
//! let scores = [0.9, 0.8, 0.3, 0.1];
//! let labels = [true, true, false, false];
//! assert_eq!(auroc(&scores, &labels), 1.0);
//!
//! let predictions = [1.0, 2.0, 3.0];
//! let targets = [1.1, 1.9, 3.2];
//! assert!(r_squared(&predictions, &targets) > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod classification;
mod regime;
mod regression;
mod summary;

pub use cdf::EmpiricalCdf;
pub use classification::{accuracy, auroc, average_precision, ConfusionCounts};
pub use regime::RegimeSummary;
pub use regression::{mean_absolute_error, pearson_correlation, r_squared, residual_sigma};
pub use summary::RunStatistics;
