//! Empirical cumulative distribution functions and stochastic dominance.
//!
//! Section IV of the paper compares the Bayes and Maximum-Likelihood decision
//! rules via empirical CDFs of segment-wise precision and recall and argues
//! in terms of first-order stochastic dominance; this module provides both.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function built from a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the empirical CDF of a sample, dropping non-finite values.
    /// Returns `None` when no finite values remain — the non-panicking
    /// constructor long-running services must use, because one all-NaN
    /// metric column must degrade into "no distribution", not kill the
    /// worker.
    pub fn try_new(sample: impl IntoIterator<Item = f64>) -> Option<Self> {
        let mut sorted: Vec<f64> = sample.into_iter().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
        Some(Self { sorted })
    }

    /// Builds the empirical CDF of a sample. NaN values are dropped.
    ///
    /// Thin panicking wrapper over [`EmpiricalCdf::try_new`] for callers
    /// that can guarantee a usable sample (fixtures, analysis scripts).
    ///
    /// # Panics
    ///
    /// Panics if the sample contains no finite values.
    pub fn new(sample: impl IntoIterator<Item = f64>) -> Self {
        Self::try_new(sample).expect("empirical CDF requires at least one finite sample value")
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for constructed CDFs).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of sample values `<= x`.
    pub fn evaluate(&self, x: f64) -> f64 {
        // partition_point gives the index of the first element > x.
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile for `p` in `[0, 1]` (lower empirical quantile).
    ///
    /// Thin panicking wrapper over [`EmpiricalCdf::quantile_clamped`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile level must be in [0, 1]");
        self.quantile_clamped(p)
    }

    /// Empirical quantile with `p` clamped into `[0, 1]` instead of
    /// panicking on out-of-range input; a NaN level is treated as `0` (the
    /// minimum). This is the path services must use on computed levels,
    /// where floating-point drift can push `p` marginally outside the unit
    /// interval.
    pub fn quantile_clamped(&self, p: f64) -> f64 {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        if p <= 0.0 {
            return self.sorted[0];
        }
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Evaluates the CDF on an equally spaced grid of `points` values between
    /// `lo` and `hi` (inclusive). Returns `(x, F(x))` pairs; used to plot the
    /// Fig. 5 style curves.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` or `hi < lo`.
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        assert!(hi >= lo, "hi must not be smaller than lo");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.evaluate(x))
            })
            .collect()
    }

    /// First-order stochastic dominance test: `self ⪯ other` in the paper's
    /// notation means the *other* distribution is right-shifted, i.e.
    /// `F_self(x) >= F_other(x)` everywhere. This method returns `true` when
    /// `self` dominates `other` in that sense evaluated on the union of both
    /// supports plus grid points, with a small tolerance for sampling noise.
    ///
    /// `tolerance` is the maximal allowed violation of the inequality (use
    /// `0.0` for the strict definition).
    pub fn stochastically_dominates(&self, other: &EmpiricalCdf, tolerance: f64) -> bool {
        let mut points: Vec<f64> = self
            .sorted
            .iter()
            .chain(other.sorted.iter())
            .copied()
            .collect();
        points.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        points.dedup();
        points
            .iter()
            .all(|&x| self.evaluate(x) + tolerance >= other.evaluate(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn evaluate_step_function() {
        let cdf = EmpiricalCdf::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.evaluate(0.5), 0.0);
        assert_eq!(cdf.evaluate(1.0), 0.25);
        assert_eq!(cdf.evaluate(2.5), 0.5);
        assert_eq!(cdf.evaluate(4.0), 1.0);
        assert_eq!(cdf.evaluate(10.0), 1.0);
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn quantiles_and_extremes() {
        let cdf = EmpiricalCdf::new([3.0, 1.0, 2.0]);
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 3.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(1.0), 3.0);
        assert!((cdf.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nan_values_are_dropped() {
        let cdf = EmpiricalCdf::new([f64::NAN, 1.0, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        let _ = EmpiricalCdf::new(std::iter::empty());
    }

    #[test]
    fn try_new_degrades_instead_of_panicking() {
        assert_eq!(EmpiricalCdf::try_new(std::iter::empty()), None);
        // The long-running-service case: a metric column that went all-NaN.
        assert_eq!(
            EmpiricalCdf::try_new([f64::NAN, f64::INFINITY, f64::NEG_INFINITY]),
            None
        );
        let cdf = EmpiricalCdf::try_new([f64::NAN, 2.0]).unwrap();
        assert_eq!(cdf.len(), 1);
        assert_eq!(cdf, EmpiricalCdf::new([2.0]));
    }

    #[test]
    fn clamped_quantiles_tolerate_out_of_range_levels() {
        let cdf = EmpiricalCdf::new([3.0, 1.0, 2.0]);
        assert_eq!(cdf.quantile_clamped(-0.3), 1.0);
        assert_eq!(cdf.quantile_clamped(1.7), 3.0);
        assert_eq!(cdf.quantile_clamped(f64::NAN), 1.0);
        // Inside the unit interval the clamped path is the quantile path.
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(cdf.quantile_clamped(p), cdf.quantile(p));
        }
    }

    #[test]
    fn curve_is_monotone() {
        let cdf = EmpiricalCdf::new([0.2, 0.4, 0.4, 0.9]);
        let curve = cdf.curve(0.0, 1.0, 11);
        assert_eq!(curve.len(), 11);
        for window in curve.windows(2) {
            assert!(window[1].1 >= window[0].1);
        }
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve[10].0, 1.0);
    }

    #[test]
    fn dominance_for_shifted_samples() {
        // "low" values: its CDF rises earlier, so it dominates (is left of) "high".
        let low = EmpiricalCdf::new([0.1, 0.2, 0.3, 0.4]);
        let high = EmpiricalCdf::new([0.5, 0.6, 0.7, 0.8]);
        assert!(low.stochastically_dominates(&high, 0.0));
        assert!(!high.stochastically_dominates(&low, 0.0));
        // Every distribution dominates itself.
        assert!(low.stochastically_dominates(&low, 0.0));
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone_and_bounded(
            sample in proptest::collection::vec(0.0f64..1.0, 1..60),
            probes in proptest::collection::vec(0.0f64..1.0, 1..20),
        ) {
            let cdf = EmpiricalCdf::new(sample);
            let mut sorted_probes = probes.clone();
            sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = 0.0;
            for p in sorted_probes {
                let v = cdf.evaluate(p);
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!(v >= last - 1e-12);
                last = v;
            }
            prop_assert_eq!(cdf.evaluate(f64::INFINITY), 1.0);
        }

        /// Adding a constant to every sample value shifts the CDF to the right,
        /// so the original sample's CDF dominates the shifted one.
        #[test]
        fn prop_shift_yields_dominance(
            sample in proptest::collection::vec(0.0f64..1.0, 1..40),
            shift in 0.0f64..0.5,
        ) {
            let base = EmpiricalCdf::new(sample.clone());
            let shifted = EmpiricalCdf::new(sample.iter().map(|v| v + shift));
            prop_assert!(base.stochastically_dominates(&shifted, 1e-12));
        }
    }
}
