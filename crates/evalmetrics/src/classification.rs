//! Binary classification metrics: accuracy, confusion counts, AUROC, AP.

use serde::{Deserialize, Serialize};

/// Confusion-matrix counts of a binary classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionCounts {
    /// Correctly predicted positives.
    pub true_positives: usize,
    /// Negatives predicted as positives.
    pub false_positives: usize,
    /// Correctly predicted negatives.
    pub true_negatives: usize,
    /// Positives predicted as negatives.
    pub false_negatives: usize,
}

impl ConfusionCounts {
    /// Builds confusion counts from predictions and ground-truth labels.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "predictions and labels must have the same length"
        );
        let mut counts = ConfusionCounts::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => counts.true_positives += 1,
                (true, false) => counts.false_positives += 1,
                (false, false) => counts.true_negatives += 1,
                (false, true) => counts.false_negatives += 1,
            }
        }
        counts
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Classification accuracy; `0` when there are no samples.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// Precision (positive predictive value); `0` when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall (true positive rate); `0` when there are no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// F1 score (harmonic mean of precision and recall); `0` when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Fraction of predictions that match the labels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predicted: &[bool], actual: &[bool]) -> f64 {
    ConfusionCounts::from_predictions(predicted, actual).accuracy()
}

/// Area under the ROC curve of a score-based binary classifier.
///
/// Computed via the Mann–Whitney U statistic: the probability that a random
/// positive receives a higher score than a random negative, counting ties as
/// one half. Returns `0.5` (chance level) when either class is absent.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn auroc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(
        scores.len(),
        labels.len(),
        "scores and labels must have the same length"
    );
    let positives: Vec<f64> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&s, _)| s)
        .collect();
    let negatives: Vec<f64> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &l)| !l)
        .map(|(&s, _)| s)
        .collect();
    if positives.is_empty() || negatives.is_empty() {
        return 0.5;
    }

    // Rank-based computation: O((n+m) log(n+m)) instead of O(n*m).
    let mut all: Vec<(f64, bool)> = scores.iter().copied().zip(labels.iter().copied()).collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // Assign average ranks to ties.
    let n = all.len();
    let mut rank_sum_positive = 0.0;
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        // Ranks are 1-based; the tied block [i..=j] gets the average rank.
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in all.iter().take(j + 1).skip(i) {
            if item.1 {
                rank_sum_positive += avg_rank;
            }
        }
        i = j + 1;
    }
    let n_pos = positives.len() as f64;
    let n_neg = negatives.len() as f64;
    let u = rank_sum_positive - n_pos * (n_pos + 1.0) / 2.0;
    u / (n_pos * n_neg)
}

/// Average precision (area under the precision-recall curve, step-wise).
///
/// Returns `0.0` when there are no positive labels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn average_precision(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(
        scores.len(),
        labels.len(),
        "scores and labels must have the same length"
    );
    let total_positives = labels.iter().filter(|&&l| l).count();
    if total_positives == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut tp = 0usize;
    let mut ap = 0.0;
    for (rank, &idx) in order.iter().enumerate() {
        if labels[idx] {
            tp += 1;
            let precision_at_k = tp as f64 / (rank + 1) as f64;
            ap += precision_at_k;
        }
    }
    ap / total_positives as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn confusion_counts_basic() {
        let predicted = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let c = ConfusionCounts::from_predictions(&predicted, &actual);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 1);
        assert_eq!(c.false_negatives, 1);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_do_not_divide_by_zero() {
        let c = ConfusionCounts::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn auroc_perfect_and_inverted() {
        let scores = [0.9, 0.7, 0.3, 0.2];
        let labels = [true, true, false, false];
        assert!((auroc(&scores, &labels) - 1.0).abs() < 1e-12);
        let inverted = [false, false, true, true];
        assert!(auroc(&scores, &inverted).abs() < 1e-12);
    }

    #[test]
    fn auroc_chance_for_constant_scores() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auroc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auroc_single_class_is_half() {
        assert_eq!(auroc(&[0.1, 0.2], &[true, true]), 0.5);
        assert_eq!(auroc(&[0.1, 0.2], &[false, false]), 0.5);
    }

    #[test]
    fn auroc_known_value() {
        // positives: 0.8, 0.4; negatives: 0.6, 0.2
        // pairs: (0.8>0.6)=1, (0.8>0.2)=1, (0.4<0.6)=0, (0.4>0.2)=1 => 3/4
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        assert!((auroc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn average_precision_perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
        assert_eq!(average_precision(&scores, &[false; 4]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_auroc_in_unit_interval(
            scores in proptest::collection::vec(0.0f64..1.0, 2..60),
            flips in proptest::collection::vec(any::<bool>(), 2..60),
        ) {
            let n = scores.len().min(flips.len());
            let v = auroc(&scores[..n], &flips[..n]);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        /// AUROC is invariant under strictly monotone transformations of the scores.
        #[test]
        fn prop_auroc_monotone_invariant(
            scores in proptest::collection::vec(0.01f64..1.0, 4..40),
            labels in proptest::collection::vec(any::<bool>(), 4..40),
        ) {
            let n = scores.len().min(labels.len());
            let scores = &scores[..n];
            let labels = &labels[..n];
            let transformed: Vec<f64> = scores.iter().map(|s| (s * 5.0).exp()).collect();
            let a = auroc(scores, labels);
            let b = auroc(&transformed, labels);
            prop_assert!((a - b).abs() < 1e-9);
        }

        /// Flipping all labels mirrors the AUROC around 0.5.
        #[test]
        fn prop_auroc_label_flip_symmetry(
            scores in proptest::collection::vec(0.0f64..1.0, 4..40),
            labels in proptest::collection::vec(any::<bool>(), 4..40),
        ) {
            let n = scores.len().min(labels.len());
            let scores = &scores[..n];
            let labels = &labels[..n];
            let has_both = labels.iter().any(|&l| l) && labels.iter().any(|&l| !l);
            prop_assume!(has_both);
            let flipped: Vec<bool> = labels.iter().map(|l| !l).collect();
            let a = auroc(scores, labels);
            let b = auroc(scores, &flipped);
            prop_assert!((a + b - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_accuracy_matches_manual_count(
            pairs in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..50)
        ) {
            let predicted: Vec<bool> = pairs.iter().map(|(p, _)| *p).collect();
            let actual: Vec<bool> = pairs.iter().map(|(_, a)| *a).collect();
            let manual = pairs.iter().filter(|(p, a)| p == a).count() as f64 / pairs.len() as f64;
            prop_assert!((accuracy(&predicted, &actual) - manual).abs() < 1e-12);
        }
    }
}
