//! Per-regime evaluation summaries for the adverse-condition scenario sweep.
//!
//! The paper reports meta-classification quality (AUROC/AUPRC over the
//! "segment has IoU = 0" label) and the Bayes-vs-ML missed-segment counts on
//! one benign distribution; the scenario sweep reports the same numbers once
//! per degradation regime. [`RegimeSummary`] is that table row — a plain
//! serialisable record the sweep writes to `BENCH_scenarios.json` and CI
//! checks for finiteness.

use serde::{Deserialize, Serialize};

/// One regime's row of the scenario sweep: meta-classification quality plus
/// the false-negative-rescue comparison, all on streams degraded by that
/// regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeSummary {
    /// Stable regime name (`"benign"`, `"fog"`, `"dropout"`, …).
    pub regime: String,
    /// Number of degraded frames evaluated.
    pub frames: usize,
    /// Number of labelled segments pooled over the evaluation split.
    pub segments: usize,
    /// Fraction of evaluation segments with IoU = 0 (the positive
    /// meta-classification class).
    pub positive_fraction: f64,
    /// AUROC of the meta classifier for "IoU = 0" on the held-out split;
    /// `0.5` when the split is degenerate (a single class).
    pub auroc: f64,
    /// Average precision (AUPRC) of the meta classifier on the held-out
    /// split; the positive base rate when the split is degenerate.
    pub auprc: f64,
    /// Ground-truth person segments completely missed under the Bayes
    /// (argmax) decision rule.
    pub missed_segments_bayes: usize,
    /// Ground-truth person segments completely missed under the
    /// Maximum-Likelihood rule.
    pub missed_segments_ml: usize,
    /// Ground-truth person segments in the evaluation split.
    pub ground_truth_segments: usize,
}

impl RegimeSummary {
    /// Person segments the ML rule finds that Bayes misses — the paper's
    /// "rescued" false negatives, here per regime. Zero when ML misses at
    /// least as many (rescue never goes negative).
    pub fn rescued_segments(&self) -> usize {
        self.missed_segments_bayes
            .saturating_sub(self.missed_segments_ml)
    }

    /// Fraction of Bayes-missed person segments the ML rule rescues;
    /// `0.0` when Bayes misses none.
    pub fn rescue_rate(&self) -> f64 {
        if self.missed_segments_bayes == 0 {
            return 0.0;
        }
        self.rescued_segments() as f64 / self.missed_segments_bayes as f64
    }

    /// Whether every floating-point metric of the row is finite — the CI
    /// smoke invariant: no degradation regime may drive the evaluation into
    /// NaN or infinity.
    pub fn is_finite(&self) -> bool {
        self.positive_fraction.is_finite() && self.auroc.is_finite() && self.auprc.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RegimeSummary {
        RegimeSummary {
            regime: "fog".to_string(),
            frames: 12,
            segments: 140,
            positive_fraction: 0.3,
            auroc: 0.84,
            auprc: 0.62,
            missed_segments_bayes: 10,
            missed_segments_ml: 4,
            ground_truth_segments: 25,
        }
    }

    #[test]
    fn rescue_arithmetic() {
        let row = summary();
        assert_eq!(row.rescued_segments(), 6);
        assert!((row.rescue_rate() - 0.6).abs() < 1e-12);
        // ML missing more than Bayes never yields a negative rescue.
        let worse = RegimeSummary {
            missed_segments_ml: 15,
            ..row
        };
        assert_eq!(worse.rescued_segments(), 0);
        let no_misses = RegimeSummary {
            missed_segments_bayes: 0,
            missed_segments_ml: 0,
            ..summary()
        };
        assert_eq!(no_misses.rescue_rate(), 0.0);
    }

    #[test]
    fn finiteness_check_catches_nan_and_infinity() {
        assert!(summary().is_finite());
        for field in 0..3 {
            let mut row = summary();
            let slot = match field {
                0 => &mut row.positive_fraction,
                1 => &mut row.auroc,
                _ => &mut row.auprc,
            };
            *slot = f64::NAN;
            assert!(!row.is_finite());
        }
    }

    #[test]
    fn serialises_roundtrip() {
        let row = summary();
        let json = serde_json::to_string(&row).unwrap();
        let back: RegimeSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, row);
    }
}
