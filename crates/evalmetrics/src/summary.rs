//! Aggregation of metric values over repeated runs.
//!
//! The paper reports every table cell as "mean over 10 runs (± standard
//! deviation of the computed mean)"; [`RunStatistics`] reproduces exactly
//! that aggregation.

use serde::{Deserialize, Serialize};

/// Mean and dispersion of a metric collected over repeated runs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunStatistics {
    values: Vec<f64>,
}

impl RunStatistics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds statistics from an iterator of per-run values.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        Self {
            values: values.into_iter().collect(),
        }
    }

    /// Records one run's value.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of runs recorded.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Whether no runs were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw per-run values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean over runs; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation over runs (`n - 1` denominator); `0.0` for
    /// fewer than two runs.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// Standard deviation of the computed mean (standard error), the `(±…)`
    /// quantity reported in the paper's tables; `0.0` for fewer than two runs.
    pub fn std_error(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        self.std_dev() / (self.values.len() as f64).sqrt()
    }

    /// Formats the statistic like the paper's tables, e.g. `87.72% (±0.14%)`,
    /// interpreting the value as a fraction when `as_percent` is true.
    pub fn format_percent(&self, decimals: usize) -> String {
        format!(
            "{:.prec$}% (±{:.prec$}%)",
            self.mean() * 100.0,
            self.std_error() * 100.0,
            prec = decimals
        )
    }

    /// Formats the statistic as a plain number, e.g. `0.181 (±0.001)`.
    pub fn format_plain(&self, decimals: usize) -> String {
        format!(
            "{:.prec$} (±{:.prec$})",
            self.mean(),
            self.std_error(),
            prec = decimals
        )
    }
}

impl FromIterator<f64> for RunStatistics {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self::from_values(iter)
    }
}

impl Extend<f64> for RunStatistics {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let stats = RunStatistics::from_values([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.count(), 4);
        assert!((stats.mean() - 2.5).abs() < 1e-12);
        // sample std of 1..4 is sqrt(5/3)
        assert!((stats.std_dev() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((stats.std_error() - (5.0f64 / 3.0).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = RunStatistics::new();
        assert!(empty.is_empty());
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);

        let single = RunStatistics::from_values([0.7]);
        assert_eq!(single.mean(), 0.7);
        assert_eq!(single.std_dev(), 0.0);
        assert_eq!(single.std_error(), 0.0);
    }

    #[test]
    fn formatting_matches_paper_style() {
        let stats = RunStatistics::from_values([0.8771, 0.8773, 0.8770, 0.8774]);
        let text = stats.format_percent(2);
        assert!(text.starts_with("87.7"));
        assert!(text.contains("(±0.0"));
        let plain = RunStatistics::from_values([0.181, 0.182]).format_plain(3);
        assert!(plain.starts_with("0.18"));
    }

    #[test]
    fn collect_and_extend() {
        let mut stats: RunStatistics = [0.1, 0.2].into_iter().collect();
        stats.extend([0.3]);
        stats.push(0.4);
        assert_eq!(stats.count(), 4);
        assert_eq!(stats.values(), &[0.1, 0.2, 0.3, 0.4]);
    }

    proptest! {
        #[test]
        fn prop_mean_within_range(values in proptest::collection::vec(0.0f64..1.0, 1..30)) {
            let stats = RunStatistics::from_values(values.clone());
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(stats.mean() >= lo - 1e-12 && stats.mean() <= hi + 1e-12);
            prop_assert!(stats.std_dev() >= 0.0);
            prop_assert!(stats.std_error() <= stats.std_dev() + 1e-15);
        }

        #[test]
        fn prop_constant_sample_has_zero_std(value in 0.0f64..1.0, n in 2usize..20) {
            let stats = RunStatistics::from_values(std::iter::repeat_n(value, n));
            prop_assert!(stats.std_dev() < 1e-12);
            prop_assert!((stats.mean() - value).abs() < 1e-12);
        }
    }
}
