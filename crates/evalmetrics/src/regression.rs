//! Regression quality metrics: R², residual sigma, Pearson correlation, MAE.

/// Coefficient of determination `R²` of predictions against targets.
///
/// `R² = 1 - SS_res / SS_tot`. Returns `0.0` when the targets have zero
/// variance (the constant predictor explains nothing by convention).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r_squared(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "predictions and targets must have the same length"
    );
    assert!(
        !targets.is_empty(),
        "r_squared requires at least one sample"
    );
    let mean_target: f64 = targets.iter().sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|t| (t - mean_target).powi(2)).sum();
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (t - p).powi(2))
        .sum();
    if ss_tot <= f64::EPSILON {
        return 0.0;
    }
    1.0 - ss_res / ss_tot
}

/// Standard deviation of the residuals (the paper's `σ` column): the root
/// mean squared prediction error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn residual_sigma(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "predictions and targets must have the same length"
    );
    assert!(
        !targets.is_empty(),
        "residual_sigma requires at least one sample"
    );
    let mse: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / targets.len() as f64;
    mse.sqrt()
}

/// Mean absolute error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mean_absolute_error(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "predictions and targets must have the same length"
    );
    assert!(
        !targets.is_empty(),
        "mean_absolute_error requires at least one sample"
    );
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / targets.len() as f64
}

/// Pearson correlation coefficient `R` between two samples.
///
/// Returns `0.0` when either sample has zero variance.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must have the same length");
    assert!(
        !xs.is_empty(),
        "pearson_correlation requires at least one sample"
    );
    let n = xs.len() as f64;
    let mean_x: f64 = xs.iter().sum::<f64>() / n;
    let mean_y: f64 = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= f64::EPSILON || var_y <= f64::EPSILON {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions() {
        let targets = [0.1, 0.5, 0.9, 0.3];
        assert!((r_squared(&targets, &targets) - 1.0).abs() < 1e-12);
        assert!(residual_sigma(&targets, &targets).abs() < 1e-12);
        assert!(mean_absolute_error(&targets, &targets).abs() < 1e-12);
        assert!((pearson_correlation(&targets, &targets) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_predictor_has_zero_r_squared() {
        let targets = [1.0, 2.0, 3.0, 4.0];
        let mean = [2.5; 4];
        assert!(r_squared(&mean, &targets).abs() < 1e-12);
    }

    #[test]
    fn constant_targets_return_zero_not_nan() {
        let targets = [2.0, 2.0, 2.0];
        let predictions = [1.0, 2.0, 3.0];
        assert_eq!(r_squared(&predictions, &targets), 0.0);
        assert_eq!(pearson_correlation(&predictions, &targets), 0.0);
    }

    #[test]
    fn residual_sigma_known_value() {
        let predictions = [1.0, 2.0];
        let targets = [2.0, 4.0];
        // residuals -1 and -2, mse = 2.5, sigma = sqrt(2.5)
        assert!((residual_sigma(&predictions, &targets) - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((mean_absolute_error(&predictions, &targets) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_detects_anticorrelation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson_correlation(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_r_squared_at_most_one(
            pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..50)
        ) {
            let predictions: Vec<f64> = pairs.iter().map(|(p, _)| *p).collect();
            let targets: Vec<f64> = pairs.iter().map(|(_, t)| *t).collect();
            prop_assert!(r_squared(&predictions, &targets) <= 1.0 + 1e-12);
        }

        #[test]
        fn prop_pearson_in_minus_one_one(
            pairs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 2..50)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|(a, _)| *a).collect();
            let ys: Vec<f64> = pairs.iter().map(|(_, b)| *b).collect();
            let r = pearson_correlation(&xs, &ys);
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
        }

        /// Pearson correlation is invariant under positive affine transforms.
        #[test]
        fn prop_pearson_affine_invariant(
            xs in proptest::collection::vec(-5.0f64..5.0, 3..30),
            scale in 0.1f64..10.0,
            shift in -5.0f64..5.0,
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
            prop_assume!(xs.iter().any(|x| (x - xs[0]).abs() > 1e-9));
            prop_assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-6);
        }

        #[test]
        fn prop_sigma_zero_iff_equal(
            targets in proptest::collection::vec(0.0f64..1.0, 1..30),
        ) {
            prop_assert!(residual_sigma(&targets, &targets) < 1e-12);
        }
    }
}
