//! Uniform sampling from `Range` / `RangeInclusive` bounds.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that can produce a uniform sample of type `T`, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

// A single blanket impl per range shape (rather than one impl per element
// type) mirrors upstream `rand` and is what makes call-site type inference
// work: `values[rng.gen_range(0..len)]` must unify the literal's integer
// variable with `usize` through the one applicable impl.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_between(rng, start, end, true)
    }
}

/// Element types with a uniform sampler, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// A uniform sample in `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_between<R: RngCore>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

/// Uniform `u64` in `[0, span)` by widening multiplication (Lemire's method);
/// the bias for any span representable here is at most 2^-64 per draw.
fn sample_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(low <= high, "cannot sample from empty range");
                    if low == 0 && high as u128 == <$t>::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    low + sample_below(rng, high as u64 - low as u64 + 1) as $t
                } else {
                    assert!(low < high, "cannot sample from empty range");
                    low + sample_below(rng, high as u64 - low as u64) as $t
                }
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                if inclusive {
                    assert!(low <= high, "cannot sample from empty range");
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as i64).wrapping_add(sample_below(rng, span + 1) as i64) as $t
                } else {
                    assert!(low < high, "cannot sample from empty range");
                    (low as i64).wrapping_add(sample_below(rng, span) as i64) as $t
                }
            }
        }
    )*};
}

impl_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                let unit = rng.next_f64() as $t;
                if inclusive {
                    assert!(low <= high, "cannot sample from empty range");
                    low + unit * (high - low)
                } else {
                    assert!(low < high, "cannot sample from empty range");
                    let value = low + unit * (high - low);
                    // Floating-point rounding may land exactly on `high`;
                    // step back inside the half-open interval.
                    if value >= high {
                        <$t>::from_bits(high.to_bits() - 1).max(low)
                    } else {
                        value
                    }
                }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);
