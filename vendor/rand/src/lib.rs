//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, self-contained implementation of the `rand` API surface the
//! MetaSeg reproduction relies on: [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`Rng::gen`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic, high quality, and entirely dependency-free.
//!
//! Stream values differ from the upstream `rand` crate (which is fine: every
//! consumer in this workspace only requires determinism for a fixed seed, not
//! a specific stream).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

mod range;

pub use range::{SampleRange, SampleUniform};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value in the given range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must lie in [0, 1]"
        );
        self.next_f64() < p
    }

    /// A uniform value of a type with a canonical "standard" distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical uniform ("standard") distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Constructing a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let u = rng.gen_range(0u16..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_preserves_elements() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut values: Vec<usize> = (0..50).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(values, sorted, "a 50-element shuffle should move something");
    }
}
