//! Sequence helpers, mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Shuffles the sequence in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}
