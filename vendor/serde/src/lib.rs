//! Offline stand-in for the parts of `serde` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! self-contained serialisation substrate: a [`Value`] document model, a
//! [`Serialize`] trait that renders any deriving type into it, a
//! [`Deserialize`] trait that rebuilds a deriving type from it, and
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! companion `serde_derive` proc-macro crate). The vendored `serde_json`
//! crate renders [`Value`] as real JSON and parses JSON back into it.
//!
//! The surface intentionally covers exactly what the MetaSeg crates need —
//! derives on structs (including generic ones) and enums, plus impls for the
//! standard scalar and container types. Deserialisation is total over the
//! shapes serialisation produces: for every deriving type `T`,
//! `T::deserialize(&t.serialize())` reconstructs an equal value (non-finite
//! floats round-trip through `null` as NaN, mirroring `serde_json`).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::str::FromStr;

pub use serde_derive::{Deserialize, Serialize};

/// A serialised document: the target of every [`Serialize`] impl.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all Rust numerics serialise through `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short name of the value's shape, used in decode error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object member lookup; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if the value is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.is_finite() && *n >= 0.0 && n.trunc() == *n => Some(*n as u64),
            _ => None,
        }
    }

    /// The string payload, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if the value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value entries, if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a document value.
    fn serialize(&self) -> Value;
}

/// Error produced when a [`Value`] cannot be decoded into the target type.
///
/// Carries a human-readable description plus the reverse path of
/// struct-field / variant names the failure occurred under (outermost last),
/// so a deep mismatch reads like `frame.prediction.data: expected number,
/// found string`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeserializeError {
    message: String,
    path: Vec<&'static str>,
}

impl DeserializeError {
    /// Creates an error with a free-form description.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            path: Vec::new(),
        }
    }

    /// Creates the standard shape-mismatch error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// Creates the standard missing-struct-field error (used by generated
    /// code). A missing field is always an error — explicit `null` is the
    /// only encoding of `None`/NaN, so truncated documents cannot silently
    /// decode to defaults.
    pub fn missing_field(field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }

    /// Returns the error annotated with the field or variant it occurred in
    /// (used by generated code; segments accumulate innermost-first).
    pub fn in_field(mut self, segment: &'static str) -> Self {
        self.path.push(segment);
        self
    }
}

impl fmt::Display for DeserializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.path.is_empty() {
            for segment in self.path.iter().rev() {
                write!(f, "{segment}.")?;
            }
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeserializeError {}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Decodes a document value into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeserializeError`] describing the first shape or range
    /// mismatch encountered.
    fn deserialize(value: &Value) -> Result<Self, DeserializeError>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        Ok(value.clone())
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
                let n = value
                    .as_f64()
                    .ok_or_else(|| DeserializeError::expected("number", value))?;
                if !n.is_finite() || n.trunc() != n {
                    return Err(DeserializeError::custom(format!(
                        "expected integer, found {n}"
                    )));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DeserializeError::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    // JSON has no NaN/Infinity; serialisation emits `null`
                    // for non-finite floats, so `null` decodes back to NaN.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeserializeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        value
            .as_bool()
            .ok_or_else(|| DeserializeError::expected("bool", value))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeserializeError::expected("string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeserializeError::custom(format!(
                "expected single-character string, found {s:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeserializeError::expected("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

fn decode_sequence<T: Deserialize>(value: &Value) -> Result<Vec<T>, DeserializeError> {
    let items = value
        .as_array()
        .ok_or_else(|| DeserializeError::expected("array", value))?;
    items.iter().map(T::deserialize).collect()
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        decode_sequence(value)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        let items: Vec<T> = decode_sequence(value)?;
        let found = items.len();
        items.try_into().map_err(|_| {
            DeserializeError::custom(format!("expected array of {N} elements, found {found}"))
        })
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        decode_sequence(value).map(|items: Vec<T>| items.into_iter().collect())
    }
}

fn decode_entries<K, V>(value: &Value) -> Result<Vec<(K, V)>, DeserializeError>
where
    K: FromStr,
    V: Deserialize,
{
    let entries = value
        .as_object()
        .ok_or_else(|| DeserializeError::expected("object", value))?;
    entries
        .iter()
        .map(|(k, v)| {
            let key = k
                .parse::<K>()
                .map_err(|_| DeserializeError::custom(format!("invalid map key {k:?}")))?;
            Ok((key, V::deserialize(v)?))
        })
        .collect()
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}
impl<K: FromStr + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        decode_entries(value).map(|entries: Vec<(K, V)>| entries.into_iter().collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}
impl<K: FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        decode_entries(value).map(|entries: Vec<(K, V)>| entries.into_iter().collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+; $len:expr)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeserializeError::expected("array", value))?;
                if items.len() != $len {
                    return Err(DeserializeError::custom(format!(
                        "expected array of {} elements, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0; 1),
    (A: 0, B: 1; 2),
    (A: 0, B: 1, C: 2; 3),
    (A: 0, B: 1, C: 2, D: 3; 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4; 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5; 6),
);

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, DeserializeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeserializeError::expected("null", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(3u16.serialize(), Value::Number(3.0));
        assert_eq!(true.serialize(), Value::Bool(true));
        assert_eq!("hi".to_string().serialize(), Value::String("hi".into()));
        assert_eq!(Option::<u8>::None.serialize(), Value::Null);
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(
            vec![1u8, 2].serialize(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        assert_eq!(
            (1u8, 2.5f64).serialize(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.5)])
        );
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(u16::deserialize(&3u16.serialize()), Ok(3));
        assert_eq!(i32::deserialize(&(-7i32).serialize()), Ok(-7));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(String::deserialize(&"hi".serialize()), Ok("hi".into()));
        assert_eq!(char::deserialize(&'x'.serialize()), Ok('x'));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
    }

    #[test]
    fn nonfinite_floats_roundtrip_as_nan() {
        // Serialisation renders non-finite floats as null (JSON has no NaN),
        // so decoding null as a float yields NaN rather than an error.
        assert!(f64::deserialize(&Value::Null).unwrap().is_nan());
        assert!(f32::deserialize(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn integer_range_and_shape_errors() {
        assert!(u8::deserialize(&Value::Number(300.0)).is_err());
        assert!(u8::deserialize(&Value::Number(-1.0)).is_err());
        assert!(u8::deserialize(&Value::Number(1.5)).is_err());
        assert!(u8::deserialize(&Value::String("1".into())).is_err());
        assert!(bool::deserialize(&Value::Number(1.0)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::deserialize(&v.serialize()), Ok(v));
        let t = (1u8, 2.5f64);
        assert_eq!(<(u8, f64)>::deserialize(&t.serialize()), Ok(t));
        let a = [1u32, 2, 3];
        assert_eq!(<[u32; 3]>::deserialize(&a.serialize()), Ok(a));
        assert!(<[u32; 2]>::deserialize(&a.serialize()).is_err());
        let opt = Some(4u16);
        assert_eq!(Option::<u16>::deserialize(&opt.serialize()), Ok(opt));
        assert_eq!(Option::<u16>::deserialize(&Value::Null), Ok(None));
        let mut map = HashMap::new();
        map.insert(7usize, "x".to_string());
        assert_eq!(
            HashMap::<usize, String>::deserialize(&map.serialize()),
            Ok(map)
        );
    }

    #[test]
    fn error_paths_accumulate_field_names() {
        let err = DeserializeError::expected("number", &Value::Null)
            .in_field("inner")
            .in_field("outer");
        assert_eq!(err.to_string(), "outer.inner.expected number, found null");
    }

    #[test]
    fn value_accessors() {
        let obj = Value::Object(vec![("k".into(), Value::Number(2.0))]);
        assert_eq!(obj.get("k"), Some(&Value::Number(2.0)));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(obj.kind(), "object");
        assert_eq!(Value::Number(2.5).as_u64(), None);
        assert_eq!(Value::Number(2.0).as_u64(), Some(2));
        assert_eq!(Value::deserialize(&obj), Ok(obj.clone()));
        assert_eq!(obj.serialize(), obj);
    }
}
