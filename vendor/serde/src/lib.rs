//! Offline stand-in for the parts of `serde` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! self-contained serialisation substrate: a [`Value`] document model, a
//! [`Serialize`] trait that renders any deriving type into it, a
//! [`Deserialize`] marker trait, and `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the companion `serde_derive` proc-macro crate).
//! The vendored `serde_json` crate renders [`Value`] as real JSON.
//!
//! The surface intentionally covers exactly what the MetaSeg crates need —
//! derives on structs (including generic ones) and enums, plus impls for the
//! standard scalar and container types.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// A serialised document: the target of every [`Serialize`] impl.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all Rust numerics serialise through `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a document value.
    fn serialize(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// No consumer in this workspace parses serialised data back, so the trait
/// carries no methods; it exists so the ubiquitous
/// `#[derive(Serialize, Deserialize)]` lines compile unchanged.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for HashSet<T> {}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}
impl<K, V: Deserialize> Deserialize for HashMap<K, V> {}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}
impl<K, V: Deserialize> Deserialize for BTreeMap<K, V> {}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )+};
}

impl_serialize_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(3u16.serialize(), Value::Number(3.0));
        assert_eq!(true.serialize(), Value::Bool(true));
        assert_eq!("hi".to_string().serialize(), Value::String("hi".into()));
        assert_eq!(Option::<u8>::None.serialize(), Value::Null);
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(
            vec![1u8, 2].serialize(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        assert_eq!(
            (1u8, 2.5f64).serialize(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.5)])
        );
    }
}
