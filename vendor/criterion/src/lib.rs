//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! Implements [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros with a straightforward wall-clock measurement
//! loop (median over the configured samples). No plots, no statistics engine
//! — the goal is that `cargo bench` runs to completion and prints a stable,
//! comparable number per benchmark.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Target measurement time per sample; keeps full `cargo bench` runs fast
/// while still averaging over enough iterations for stable numbers.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(200);

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group(id.as_ref().to_string());
        group.bench_function("run", f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Measures one benchmark of the group.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, id.as_ref(), &mut bencher.samples);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per bench).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, collecting one duration-per-iteration sample per
    /// configured sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and calibration: how many iterations fit the target time?
        let calibration_start = Instant::now();
        std::hint::black_box(routine());
        let once = calibration_start.elapsed();
        let iterations = if once.is_zero() {
            1_000
        } else {
            (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as usize
        };

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iterations {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iterations as u32);
        }
    }
}

fn report(group: &str, id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples collected");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{group}/{id}: median {} (min {}, max {}, {} samples)",
        format_duration(median),
        format_duration(min),
        format_duration(max),
        samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Prevents the optimiser from deleting a value or the work producing it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
