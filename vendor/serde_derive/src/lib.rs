//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` crate's `Value` document model with a small hand-rolled
//! token parser (the real `serde_derive` depends on `syn`/`quote`, which are
//! unavailable without a crates.io mirror). Supports named-field structs
//! (including generic ones), tuple structs, unit structs, and enums with
//! unit, tuple and struct variants — the full shape surface of this
//! workspace. The generated `Deserialize` impl inverts exactly the document
//! shape the generated `Serialize` impl produces, so
//! `T::deserialize(&t.serialize())` round-trips every deriving type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` definition, reduced to what codegen needs.
struct Input {
    name: String,
    /// Generic parameters in declaration order.
    generics: Vec<GenericParam>,
    kind: Kind,
}

enum GenericParam {
    Lifetime(String),
    Type(String),
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let (impl_generics, ty_generics) = generics_split(&parsed.generics, "::serde::Serialize");
    let body = serialize_body(&parsed);
    format!(
        "impl{impl_generics} ::serde::Serialize for {}{ty_generics} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        parsed.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let (impl_generics, ty_generics) = generics_split(&parsed.generics, "::serde::Deserialize");
    let body = deserialize_body(&parsed);
    format!(
        "impl{impl_generics} ::serde::Deserialize for {}{ty_generics} {{\n\
         fn deserialize(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeserializeError> {{ {body} }}\n\
         }}",
        parsed.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// Renders `(impl generics, type generics)` with `bound` applied to every
/// type parameter, e.g. `(<'a, T: ::serde::Serialize>, <'a, T>)`.
fn generics_split(generics: &[GenericParam], bound: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let with_bounds: Vec<String> = generics
        .iter()
        .map(|p| match p {
            GenericParam::Lifetime(l) => l.clone(),
            GenericParam::Type(t) => format!("{t}: {bound}"),
        })
        .collect();
    let plain: Vec<String> = generics
        .iter()
        .map(|p| match p {
            GenericParam::Lifetime(l) => l.clone(),
            GenericParam::Type(t) => t.clone(),
        })
        .collect();
    (
        format!("<{}>", with_bounds.join(", ")),
        format!("<{}>", plain.join(", ")),
    )
}

fn serialize_body(input: &Input) -> String {
    match &input.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(count) => {
            let entries: Vec<String> = (0..*count)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            if *count == 1 {
                entries[0].clone()
            } else {
                format!("::serde::Value::Array(vec![{}])", entries.join(", "))
            }
        }
        Kind::UnitStruct => "::serde::Value::Object(vec![])".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(&input.name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    }
}

fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        VariantFields::Unit => {
            format!("{enum_name}::{v} => ::serde::Value::String(\"{v}\".to_string()),")
        }
        VariantFields::Tuple(count) => {
            let binders: Vec<String> = (0..*count).map(|i| format!("__f{i}")).collect();
            let values: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b})"))
                .collect();
            let payload = if *count == 1 {
                values[0].clone()
            } else {
                format!("::serde::Value::Array(vec![{}])", values.join(", "))
            };
            format!(
                "{enum_name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), {payload})]),",
                binders.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))"))
                .collect();
            format!(
                "{enum_name}::{v} {{ {} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

// --- Deserialize codegen ---------------------------------------------------

/// Decode expression for one named field read off `source` (an expression
/// evaluating to `&Value` of the surrounding object). A missing field is a
/// hard error: explicit `null` is the only encoding of `None`/NaN, so a
/// truncated or foreign document cannot silently decode to defaults.
fn named_field_decode(source: &str, field: &str) -> String {
    format!(
        "::serde::Deserialize::deserialize({source}.get(\"{field}\")\
         .ok_or_else(|| ::serde::DeserializeError::missing_field(\"{field}\"))?)\
         .map_err(|__e| __e.in_field(\"{field}\"))?"
    )
}

/// Statements binding `__items` to the payload array of `source`, checked to
/// hold exactly `count` elements.
fn tuple_items_decode(source: &str, count: usize) -> String {
    format!(
        "let __items = {source}.as_array().ok_or_else(|| \
         ::serde::DeserializeError::expected(\"array\", {source}))?;\n\
         if __items.len() != {count} {{\n\
         return Err(::serde::DeserializeError::custom(format!(\
         \"expected array of {count} elements, found {{}}\", __items.len())));\n\
         }}"
    )
}

fn deserialize_body(input: &Input) -> String {
    match &input.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {}", named_field_decode("__value", f)))
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Object(_) => Ok(Self {{ {} }}),\n\
                 __other => Err(::serde::DeserializeError::expected(\"object\", __other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(count) => {
            if *count == 1 {
                // One-field tuple structs serialise transparently as the
                // inner value; decode the same way.
                "Ok(Self(::serde::Deserialize::deserialize(__value)?))".to_string()
            } else {
                let elements: Vec<String> = (0..*count)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                    .collect();
                format!(
                    "{}\nOk(Self({}))",
                    tuple_items_decode("__value", *count),
                    elements.join(", ")
                )
            }
        }
        Kind::UnitStruct => "match __value {\n\
             ::serde::Value::Object(_) | ::serde::Value::Null => Ok(Self),\n\
             __other => Err(::serde::DeserializeError::expected(\"object\", __other)),\n\
             }"
        .to_string(),
        Kind::Enum(variants) => deserialize_enum_body(&input.name, variants),
    }
}

fn deserialize_enum_body(enum_name: &str, variants: &[Variant]) -> String {
    let unknown = format!(
        "Err(::serde::DeserializeError::custom(format!(\
         \"unknown variant `{{}}` of {enum_name}\", __other)))"
    );

    // Unit variants arrive as a bare string, payload variants as a
    // single-entry object keyed by the variant name.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| format!("\"{0}\" => Ok({enum_name}::{0}),", v.name))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, VariantFields::Unit))
        .map(|v| deserialize_variant_arm(enum_name, v))
        .collect();

    let mut outer_arms = Vec::new();
    if !unit_arms.is_empty() {
        outer_arms.push(format!(
            "::serde::Value::String(__name) => match __name.as_str() {{\n\
             {}\n__other => {unknown},\n}},",
            unit_arms.join("\n")
        ));
    }
    if !payload_arms.is_empty() {
        outer_arms.push(format!(
            "::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
             let (__variant, __payload) = &__entries[0];\n\
             match __variant.as_str() {{\n\
             {}\n__other => {unknown},\n}}\n}},",
            payload_arms.join("\n")
        ));
    }
    outer_arms.push(
        "__other => Err(::serde::DeserializeError::expected(\"enum variant\", __other)),"
            .to_string(),
    );
    format!("match __value {{\n{}\n}}", outer_arms.join("\n"))
}

fn deserialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        VariantFields::Unit => unreachable!("unit variants are handled in the string arm"),
        VariantFields::Tuple(count) => {
            if *count == 1 {
                format!(
                    "\"{v}\" => Ok({enum_name}::{v}(\
                     ::serde::Deserialize::deserialize(__payload)\
                     .map_err(|__e| __e.in_field(\"{v}\"))?)),"
                )
            } else {
                let elements: Vec<String> = (0..*count)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::deserialize(&__items[{i}])\
                             .map_err(|__e| __e.in_field(\"{v}\"))?"
                        )
                    })
                    .collect();
                format!(
                    "\"{v}\" => {{\n{}\nOk({enum_name}::{v}({}))\n}},",
                    tuple_items_decode("__payload", *count),
                    elements.join(", ")
                )
            }
        }
        VariantFields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {}", named_field_decode("__payload", f)))
                .collect();
            format!(
                "\"{v}\" => Ok({enum_name}::{v} {{ {} }}),",
                inits.join(", ")
            )
        }
    }
}

// --- token-level parsing ---------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);
    skip_where_clause(&tokens, &mut i);

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };

    Input {
        name,
        generics,
        kind,
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` and friends
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `<...>` after the type name, returning the declared parameters.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<GenericParam> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                *i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                *i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                *i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' && depth == 1 && at_param_start => {
                *i += 1;
                let name = expect_ident(tokens, i);
                params.push(GenericParam::Lifetime(format!("'{name}")));
                at_param_start = false;
            }
            Some(TokenTree::Ident(id)) if depth == 1 && at_param_start => {
                let text = id.to_string();
                if text == "const" {
                    panic!(
                        "const generic parameters are not supported by the vendored serde_derive"
                    );
                }
                params.push(GenericParam::Type(text));
                at_param_start = false;
                *i += 1;
            }
            Some(_) => {
                // Bounds, defaults, nested generics: not needed for codegen.
                *i += 1;
            }
            None => panic!("unbalanced generics in derive input"),
        }
    }
    params
}

fn skip_where_clause(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        while let Some(token) = tokens.get(*i) {
            if matches!(token, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace) {
                break;
            }
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ';') {
                break;
            }
            *i += 1;
        }
    }
}

/// Extracts the field names from the body of a named-field struct or variant.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        // Skip `: Type` up to the next top-level comma. Groups are atomic
        // token trees, so only `<`/`>` need explicit depth tracking.
        let mut depth = 0usize;
        while let Some(token) = tokens.get(i) {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0usize;
    for (idx, token) in tokens.iter().enumerate() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            // Count separating commas only; a trailing comma ends the list.
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && idx + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional `= discriminant` up to the next comma.
        while let Some(token) = tokens.get(i) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
