//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, Standard};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Strategy drawing from a type's full ("standard") distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyValue<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Standard> Strategy for AnyValue<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// The canonical strategy of the type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyValue<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyValue::default()
            }
        }
    )*};
}

impl_arbitrary_standard!(bool, u32, u64, f64);

/// The canonical strategy of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
