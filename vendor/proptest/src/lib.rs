//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Provides the [`proptest!`] macro, the `prop_assert*` / [`prop_assume!`]
//! macros, range/tuple/`any::<bool>()` strategies and the
//! [`collection`] strategies (`vec`, `hash_set`) on top of a deterministic
//! seeded runner. Shrinking is intentionally not implemented: on failure the
//! runner panics with the failing case index so the case can be replayed
//! (generation is a pure function of test name and case index).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod prelude;

mod strategy;

pub use strategy::{any, AnyValue, Arbitrary, Strategy};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable through the `PROPTEST_CASES` environment
    /// variable (mirroring upstream proptest's env override).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` filtered the case out; the runner draws a fresh one.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Result type returned by the generated test-case closures.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic test-case driver.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// Runs `case` until `config.cases` cases pass.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or when too many cases are rejected by
    /// `prop_assume!`.
    pub fn run(&mut self, name: &str, mut case: impl FnMut(&mut StdRng) -> TestCaseResult) {
        let base_seed = fnv1a(name.as_bytes());
        let mut passed = 0u32;
        let mut attempt = 0u64;
        let max_attempts = u64::from(self.config.cases) * 32 + 256;
        while passed < self.config.cases {
            attempt += 1;
            assert!(
                attempt <= max_attempts,
                "proptest '{name}': too many rejected cases ({} passed of {})",
                passed,
                self.config.cases
            );
            let mut rng =
                StdRng::seed_from_u64(base_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(message)) => {
                    panic!("proptest '{name}' failed at attempt {attempt}: {message}")
                }
            }
        }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Declares property-based tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __runner = $crate::TestRunner::new($config);
                __runner.run(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                    $body
                    Ok(())
                });
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?} == {:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left == *__right, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{:?} != {:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left != *__right, $($fmt)+);
    }};
}

/// Rejects the current case, asking the runner for a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
