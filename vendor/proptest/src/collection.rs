//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// A collection-size specification: an exact size or a size range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed size (inclusive).
    pub lo: usize,
    /// Largest allowed size (inclusive).
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        Self {
            lo: range.start,
            hi: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        Self {
            lo: *range.start(),
            hi: *range.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `HashSet`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = HashSet::with_capacity(target);
        // Duplicates shrink the yield; retry a bounded number of times so a
        // small value space cannot loop forever.
        let mut attempts = 0usize;
        let max_attempts = target * 64 + 64;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// A strategy for `HashSet`s with sizes drawn from `size`.
///
/// When the element space is smaller than the requested size the set is
/// simply as large as the space allows (upstream proptest rejects instead).
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
    HashSetStrategy {
        element,
        size: size.into(),
    }
}
