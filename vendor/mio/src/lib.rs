//! Offline stand-in for the parts of `mio` this workspace uses.
//!
//! A minimal readiness-notification poller in the mio idiom: register file
//! descriptors with a [`Poll`] under a caller-chosen [`Token`] and an
//! [`Interest`] mask, then block on [`Poll::poll`] until the kernel reports
//! readiness. On Linux the implementation is `epoll` — O(ready) wakeups
//! whatever the number of registered descriptors, which is what lets one
//! transport thread own thousands of camera connections. On other Unix
//! systems it degrades to `poll(2)` (O(registered) per wakeup, same
//! level-triggered semantics, correct but slower at scale).
//!
//! Deliberate simplifications relative to real mio:
//!
//! * **Level-triggered only.** Callers re-arm nothing: a descriptor with
//!   buffered input stays readable until drained. This removes the entire
//!   class of lost-wakeup bugs edge-triggered loops must defend against,
//!   at the cost of one extra syscall per drained descriptor.
//! * **Any [`AsRawFd`] registers directly** (the mio 0.6 `SourceFd` shape)
//!   instead of wrapping sockets in crate-owned types; the standard
//!   library's nonblocking `TcpListener`/`TcpStream` are used as they are.
//! * **[`Waker`] is a nonblocking socketpair**, not an `eventfd`: one byte
//!   written by any thread makes the poll return with the waker's token.
//!   Coalescing is preserved — a full signal buffer means a wake is already
//!   pending, so `wake` never blocks and never fails.
//!
//! The `unsafe` in this crate is confined to the two syscall shims at the
//! bottom (the private `sys` module); everything above them is safe Rust,
//! and the public API is entirely safe.

#![warn(missing_docs)]

use std::io;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Caller-chosen identity of one registered descriptor, echoed back on every
/// readiness event for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interests of one registration: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// Combines two interests (mirrors `mio::Interest::add`; the `|`
    /// operator below is the idiomatic spelling).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest {
            readable: self.readable || other.readable,
            writable: self.writable || other.writable,
        }
    }

    /// Whether this interest includes read readiness.
    pub fn is_readable(self) -> bool {
        self.readable
    }

    /// Whether this interest includes write readiness.
    pub fn is_writable(self) -> bool {
        self.writable
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event: which registration, and which directions are ready.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
}

impl Event {
    /// The token the ready descriptor was registered under.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Whether the descriptor is readable. Errors and hangups report as
    /// readable too: the next read observes the condition (EOF or the
    /// pending error) and the owner tears the connection down — exactly the
    /// treatment a closed camera connection needs.
    pub fn is_readable(&self) -> bool {
        self.readable || self.error
    }

    /// Whether the descriptor is writable.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// Whether the kernel reported an error or hangup condition.
    pub fn is_error(&self) -> bool {
        self.error
    }
}

/// A collection of readiness events, filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Creates storage for up to `capacity` events per poll call.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events of the last poll call.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Whether the last poll call returned no events (timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of events the last poll call returned.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The readiness poller: registered descriptors in, readiness events out.
#[derive(Debug)]
pub struct Poll {
    selector: sys::Selector,
}

impl Poll {
    /// Creates a poller.
    ///
    /// # Errors
    ///
    /// Returns the underlying OS error when the kernel poller cannot be
    /// created (e.g. descriptor exhaustion).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            selector: sys::Selector::new()?,
        })
    }

    /// Registers a descriptor under `token` with the given interests. The
    /// descriptor should already be nonblocking — readiness is a hint, not
    /// a guarantee, and a blocking read on a spuriously-ready socket would
    /// stall the event loop.
    ///
    /// # Errors
    ///
    /// Returns the OS error (e.g. `EEXIST` for a double registration).
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.selector.register(source.as_raw_fd(), token, interest)
    }

    /// Changes the token and/or interests of an already-registered
    /// descriptor — how an event loop arms and disarms write interest as
    /// its output buffer fills and drains.
    ///
    /// # Errors
    ///
    /// Returns the OS error (e.g. `ENOENT` when never registered).
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.selector
            .reregister(source.as_raw_fd(), token, interest)
    }

    /// Removes a descriptor's registration. Always deregister before
    /// closing: some kernels deliver stale events for descriptors closed
    /// while registered.
    ///
    /// # Errors
    ///
    /// Returns the OS error (e.g. `ENOENT` when never registered).
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.selector.deregister(source.as_raw_fd())
    }

    /// Blocks until at least one registered descriptor is ready, the
    /// timeout elapses (`events` is then empty), or a signal interrupts the
    /// wait (treated as a timeout, never an error — the caller's loop
    /// re-polls).
    ///
    /// # Errors
    ///
    /// Returns the OS error of the underlying wait.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        self.selector
            .wait(&mut events.inner, events.capacity, timeout)
    }
}

/// Cross-thread wakeup for a [`Poll`]: any thread holding (a clone of an
/// `Arc` around) the waker can make the poll return with the waker's token.
///
/// Implemented as a nonblocking socketpair registered read-side with the
/// poll; [`Waker::wake`] writes one byte. Wakes coalesce: once the signal
/// buffer is full a wake is already pending, so `wake` is lock-free,
/// non-blocking and infallible from the caller's point of view.
#[derive(Debug)]
pub struct Waker {
    sender: UnixStream,
    receiver: UnixStream,
}

impl Waker {
    /// Creates a waker registered with `poll` under `token`.
    ///
    /// # Errors
    ///
    /// Returns the OS error when the socketpair cannot be created or
    /// registered.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let (sender, receiver) = UnixStream::pair()?;
        sender.set_nonblocking(true)?;
        receiver.set_nonblocking(true)?;
        poll.register(&receiver, token, Interest::READABLE)?;
        Ok(Waker { sender, receiver })
    }

    /// Signals the poller. Never blocks: a full signal buffer means a wake
    /// is already pending, which is success.
    pub fn wake(&self) {
        use std::io::Write;
        // WouldBlock = coalesced with a pending wake; any other error means
        // the poll side is gone, and there is nobody left to wake.
        let _ = (&self.sender).write(&[1]);
    }

    /// Drains pending wake signals; the poll's owner calls this on the
    /// waker token so the descriptor stops reporting readable.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buffer = [0u8; 64];
        while let Ok(n) = (&self.receiver).read(&mut buffer) {
            if n == 0 {
                return;
            }
        }
    }
}

/// Converts an optional timeout to whole milliseconds for the syscalls,
/// rounding up so a 100-microsecond timeout waits 1 ms rather than spinning.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) if t.is_zero() => 0,
        Some(t) => t.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! The Linux selector: `epoll`, level-triggered.

    use super::{timeout_ms, Event, Interest, Token};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// One `struct epoll_event`. The kernel declares it packed on x86, so
    /// the Rust mirror must match or the data union lands at the wrong
    /// offset.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    fn interest_mask(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.is_readable() {
            mask |= EPOLLIN;
        }
        if interest.is_writable() {
            mask |= EPOLLOUT;
        }
        mask
    }

    #[derive(Debug)]
    pub(crate) struct Selector {
        epfd: RawFd,
    }

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            // SAFETY: epoll_create1 takes a flag word and returns a new
            // descriptor or -1; no pointers cross the boundary.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, interest: Interest, token: Token) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest_mask(interest),
                data: token.0 as u64,
            };
            // SAFETY: the event pointer is valid for the duration of the
            // call and ignored entirely for EPOLL_CTL_DEL.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn register(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        pub(crate) fn reregister(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, Interest::READABLE, Token(0))
        }

        pub(crate) fn wait(
            &self,
            out: &mut Vec<Event>,
            capacity: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buffer = vec![EpollEvent { events: 0, data: 0 }; capacity];
            // SAFETY: the buffer pointer is valid for `capacity` entries and
            // the kernel writes at most that many.
            let count = unsafe {
                epoll_wait(
                    self.epfd,
                    buffer.as_mut_ptr(),
                    capacity as c_int,
                    timeout_ms(timeout),
                )
            };
            if count < 0 {
                let error = io::Error::last_os_error();
                // A signal interrupting the wait is a spurious wakeup, not
                // a failure: the caller's loop simply polls again.
                if error.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(error);
            }
            for raw in buffer.iter().take(count as usize) {
                // Copy out of the (possibly packed) struct before use.
                let mask = raw.events;
                let data = raw.data;
                out.push(Event {
                    token: Token(data as usize),
                    readable: mask & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: mask & EPOLLOUT != 0,
                    error: mask & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            // SAFETY: closing an owned descriptor exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! The portable Unix selector: `poll(2)` over the registration table.
    //! O(registered) per wakeup — correct everywhere, slower than epoll at
    //! thousands of descriptors.

    use super::{timeout_ms, Event, Interest, Token};
    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[derive(Debug)]
    pub(crate) struct Selector {
        registered: Mutex<Vec<(RawFd, Token, Interest)>>,
    }

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            Ok(Selector {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub(crate) fn register(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let mut table = self.registered.lock().expect("selector table lock");
            if table.iter().any(|(existing, _, _)| *existing == fd) {
                return Err(io::Error::from(io::ErrorKind::AlreadyExists));
            }
            table.push((fd, token, interest));
            Ok(())
        }

        pub(crate) fn reregister(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let mut table = self.registered.lock().expect("selector table lock");
            match table.iter_mut().find(|(existing, _, _)| *existing == fd) {
                Some(entry) => {
                    *entry = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::from(io::ErrorKind::NotFound)),
            }
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut table = self.registered.lock().expect("selector table lock");
            let before = table.len();
            table.retain(|(existing, _, _)| *existing != fd);
            if table.len() == before {
                return Err(io::Error::from(io::ErrorKind::NotFound));
            }
            Ok(())
        }

        pub(crate) fn wait(
            &self,
            out: &mut Vec<Event>,
            capacity: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let snapshot: Vec<(RawFd, Token, Interest)> =
                { self.registered.lock().expect("selector table lock").clone() };
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.is_readable() { POLLIN } else { 0 }
                        | if interest.is_writable() { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            // SAFETY: the fds pointer is valid for the slice's length for
            // the duration of the call.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms(timeout)) };
            if rc < 0 {
                let error = io::Error::last_os_error();
                if error.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(error);
            }
            for (slot, (_, token, _)) in fds.iter().zip(&snapshot) {
                if out.len() >= capacity {
                    break;
                }
                let revents = slot.revents;
                if revents == 0 {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: revents & POLLIN != 0,
                    writable: revents & POLLOUT != 0,
                    error: revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
compile_error!("the vendored mio stand-in supports Unix targets only");

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    const LISTENER: Token = Token(0);
    const WAKER: Token = Token(1);
    const CLIENT: Token = Token(2);

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poll = Poll::new().unwrap();
        poll.register(&listener, LISTENER, Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing pending: a short poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let _client = TcpStream::connect(addr).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == LISTENER && e.is_readable()));
        let (accepted, _) = listener.accept().unwrap();
        drop(accepted);
    }

    #[test]
    fn data_readiness_and_write_interest_rearm() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.register(&server, CLIENT, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        client.write_all(b"hello").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_readable()));
        let mut buffer = [0u8; 16];
        let read = (&server).read(&mut buffer).unwrap();
        assert_eq!(&buffer[..read], b"hello");

        // Level-triggered: drained now, so only write readiness reports
        // once write interest is armed.
        poll.reregister(&server, CLIENT, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_writable()));
        assert!(!events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_readable()));

        poll.deregister(&server).unwrap();
        client.write_all(b"after deregister").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_reports_readable_so_the_owner_observes_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.register(&server, CLIENT, Interest::READABLE).unwrap();
        drop(client);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_readable()));
        let mut buffer = [0u8; 1];
        assert_eq!((&server).read(&mut buffer).unwrap(), 0, "EOF expected");
    }

    #[test]
    fn waker_wakes_across_threads_and_coalesces() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, WAKER).unwrap());
        let mut poll = poll;
        let mut events = Events::with_capacity(8);

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            // Many wakes from another thread coalesce into at least one
            // readiness report and never block.
            for _ in 0..10_000 {
                remote.wake();
            }
        });
        let started = Instant::now();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == WAKER && e.is_readable()));
        assert!(started.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
        waker.drain();

        // Drained: the next short poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn timeouts_round_up_instead_of_spinning() {
        assert_eq!(super::timeout_ms(None), -1);
        assert_eq!(super::timeout_ms(Some(Duration::from_millis(25))), 25);
        assert_eq!(super::timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(super::timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(
            super::timeout_ms(Some(Duration::from_secs(1 << 40))),
            i32::MAX
        );
    }
}
