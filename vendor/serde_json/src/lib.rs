//! Offline stand-in for the parts of `serde_json` this workspace uses:
//! rendering any [`serde::Serialize`] type as compact or pretty-printed JSON
//! and parsing JSON text back into any [`serde::Deserialize`] type.
//!
//! Parsing is hardened for servers that feed it untrusted wire bytes: the
//! recursive-descent parser caps nesting depth (no stack overflow on
//! adversarial input), reports byte offsets in every error, and rejects
//! trailing garbage after the document.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Maximum nesting depth accepted by the parser. Deeper documents error out
/// instead of overflowing the stack — important for servers parsing
/// untrusted input.
const MAX_DEPTH: usize = 128;

/// Serialisation or parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error(format!("at byte {offset}: {}", message.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails with the vendored document model; the `Result` mirrors the
/// upstream `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON with two-space indentation.
///
/// # Errors
///
/// Never fails with the vendored document model; the `Result` mirrors the
/// upstream `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some("  "), 0);
    Ok(out)
}

/// Parses a JSON document into any [`Deserialize`] type (including
/// [`Value`] itself, which decodes as the parsed document).
///
/// # Errors
///
/// Fails on malformed JSON (with the byte offset of the problem), on
/// documents nested deeper than an internal safety cap, on trailing
/// non-whitespace after the document, and on any shape mismatch between the
/// document and the target type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse(parser.pos, "trailing characters after value"));
    }
    T::deserialize(&value).map_err(|e| Error(e.to_string()))
}

/// Renders `value` into the document model (never fails; the `Result`
/// mirrors the upstream `serde_json` signature).
///
/// # Errors
///
/// Never fails with the vendored document model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Decodes a document value into any [`Deserialize`] type.
///
/// # Errors
///
/// Fails on any shape mismatch between the document and the target type.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value).map_err(|e| Error(e.to_string()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                self.pos,
                format!("expected `{}`", byte as char),
            ))
        }
    }

    /// Consumes `keyword` if it is next in the input.
    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::parse(self.pos, "document nested too deeply"));
        }
        match self.bytes.get(self.pos) {
            None => Err(Error::parse(self.pos, "unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_whitespace();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_whitespace();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::parse(self.pos, "expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    self.skip_whitespace();
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::parse(self.pos, "expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(&other) => Err(Error::parse(
                self.pos,
                format!("unexpected character `{}`", other as char),
            )),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        // Overflowing literals like `1e999` parse to infinity in Rust;
        // reject them like upstream serde_json does — a wire peer must not
        // be able to smuggle non-finite values past `null`-encoded NaN.
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Value::Number)
            .ok_or_else(|| Error::parse(start, format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.parse_hex4()?;
                            // Surrogate pairs encode astral-plane characters.
                            let code = if (0xD800..0xDC00).contains(&high) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::parse(
                                        self.pos,
                                        "unpaired high surrogate in string escape",
                                    ));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::parse(
                                        self.pos,
                                        "invalid low surrogate in string escape",
                                    ));
                                }
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(Error::parse(
                                        self.pos,
                                        "invalid unicode escape in string",
                                    ))
                                }
                            }
                            // parse_hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(Error::parse(self.pos, "invalid string escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // byte boundaries are guaranteed valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input originates from &str");
                    let c = rest.chars().next().expect("non-empty by the match above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses exactly four hex digits, advancing past them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse(self.pos, "truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse(self.pos, "invalid unicode escape"))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| Error::parse(self.pos, "invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(step);
        }
    }
}

/// JSON has no NaN/Infinity; mirror `serde_json`'s behaviour of emitting
/// `null` for non-finite floats. Integral values print without a fraction.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip_shapes() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn parse_roundtrips_shapes() {
        let value: Value = from_str("{\"a\": [1, 2.5, true, null, \"x\"]}").unwrap();
        assert_eq!(
            value,
            Value::Object(vec![(
                "a".to_string(),
                Value::Array(vec![
                    Value::Number(1.0),
                    Value::Number(2.5),
                    Value::Bool(true),
                    Value::Null,
                    Value::String("x".to_string()),
                ])
            )])
        );
        let rendered = to_string(&value).unwrap();
        assert_eq!(from_str::<Value>(&rendered).unwrap(), value);
    }

    #[test]
    fn parse_decodes_into_types() {
        assert_eq!(from_str::<Vec<u32>>("[1,2,3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<Option<bool>>("null").unwrap(), None);
        assert!(from_str::<Vec<u32>>("[1,\"x\"]").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(
            from_str::<String>("\"\\u00e9\\t\\\"\\\\\"").unwrap(),
            "é\t\"\\"
        );
        // Astral-plane character via a surrogate pair.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
    }

    #[test]
    fn float_precision_roundtrips_exactly() {
        for v in [
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -1.0 / 7.0,
            9_007_199_254_740_993.5,
        ] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), v, "through {text}");
        }
        // Non-finite values render as null and come back as NaN.
        assert!(from_str::<f64>(&to_string(&f64::NAN).unwrap())
            .unwrap()
            .is_nan());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "[1] x", "\"ab", "nul", "+",
            "--1", "1e999", "-1e999",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
        let err = from_str::<Value>("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "got {err}");
    }

    #[test]
    fn parse_caps_nesting_depth() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(from_str::<Value>(&deep).is_err());
        let shallow = "[".repeat(64) + &"]".repeat(64);
        assert!(from_str::<Value>(&shallow).is_ok());
    }

    #[test]
    fn value_conversions() {
        let value = to_value(&vec![1u8, 2]).unwrap();
        assert_eq!(from_value::<Vec<u8>>(&value).unwrap(), vec![1, 2]);
        assert!(from_value::<bool>(&value).is_err());
    }

    #[test]
    fn pretty_indents_objects() {
        let value = Value::Object(vec![
            ("a".to_string(), Value::Number(1.0)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        struct Wrapper(Value);
        impl Serialize for Wrapper {
            fn serialize(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&Wrapper(value)).unwrap();
        assert!(text.contains("\n  \"a\": 1"));
        assert!(text.ends_with('}'));
    }
}
