//! Offline stand-in for the parts of `serde_json` this workspace uses:
//! rendering any [`serde::Serialize`] type as compact or pretty-printed JSON.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation error. The vendored document model is infallible, so this
/// exists purely for signature compatibility with `serde_json`.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialisation error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails with the vendored document model; the `Result` mirrors the
/// upstream `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON with two-space indentation.
///
/// # Errors
///
/// Never fails with the vendored document model; the `Result` mirrors the
/// upstream `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(step);
        }
    }
}

/// JSON has no NaN/Infinity; mirror `serde_json`'s behaviour of emitting
/// `null` for non-finite floats. Integral values print without a fraction.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip_shapes() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn pretty_indents_objects() {
        let value = Value::Object(vec![
            ("a".to_string(), Value::Number(1.0)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        struct Wrapper(Value);
        impl Serialize for Wrapper {
            fn serialize(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&Wrapper(value)).unwrap();
        assert!(text.contains("\n  \"a\": 1"));
        assert!(text.ends_with('}'));
    }
}
