//! Offline stand-in for the parts of `rayon` this workspace uses.
//!
//! Real data parallelism on scoped OS threads: `par_iter().map(..).collect()`
//! over slices and `(0..n).into_par_iter()` over index ranges. Work is split
//! into one contiguous chunk per worker, results are stitched back together
//! in order, so the output is identical to the sequential equivalent.
//!
//! Thread count defaults to the machine's available parallelism and can be
//! pinned with the `RAYON_NUM_THREADS` environment variable, mirroring rayon.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Index of the worker chunk this thread is processing, when the thread
    /// was spawned by one of the parallel operations below.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Index of the current thread within the pool, or `None` when called from
/// outside a parallel operation — mirroring `rayon::current_thread_index`.
/// Lets nested code detect that it is already running on a worker (e.g. to
/// avoid spawning a second layer of threads over the same cores).
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|index| index.get())
}

/// Runs `f` with the thread marked as pool worker `index`.
fn as_worker<R>(index: usize, f: impl FnOnce() -> R) -> R {
    WORKER_INDEX.with(|slot| {
        let previous = slot.replace(Some(index));
        let result = f();
        slot.set(previous);
        result
    })
}

pub mod prelude {
    //! The commonly imported surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads used by the parallel operations.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Applies `f` to every element of `items` in parallel, preserving order.
pub fn par_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(index, chunk)| {
                scope.spawn(move || as_worker(index, || chunk.iter().map(f).collect::<Vec<R>>()))
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// By-reference parallel iteration, mirroring `rayon::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter;

    /// A parallel iterator over references to the elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Applies `f` to every element of `items` by value in parallel, preserving
/// order — the owned-input counterpart of [`par_map`].
pub fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut out: Vec<R> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(index, chunk)| {
                scope.spawn(move || {
                    as_worker(index, || chunk.into_iter().map(f).collect::<Vec<R>>())
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// By-value parallel iteration, mirroring `rayon::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// By-value parallel iterator over an owned `Vec`.
#[derive(Debug)]
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Maps every element through `f` in parallel, consuming the elements.
    pub fn map<R, F>(self, f: F) -> ParVecMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParVecMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParVec::map`].
#[derive(Debug)]
pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParVecMap<T, F> {
    /// Evaluates the map in parallel and collects the results in order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map_vec(self.items, self.f).into_iter().collect()
    }
}

/// Parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map(self.items, f);
    }
}

/// The result of [`ParIter::map`].
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F> ParMap<'a, T, F>
where
    T: Sync,
{
    /// Evaluates the map in parallel and collects the results in order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map(self.items, self.f).into_iter().collect()
    }
}

/// Parallel iterator over an index range.
#[derive(Debug)]
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }
}

/// The result of [`ParRange::map`].
#[derive(Debug)]
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Evaluates the map in parallel and collects the results in order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        C: FromIterator<R>,
    {
        let indices: Vec<usize> = self.range.collect();
        let f = self.f;
        par_map(&indices, |&i| f(i)).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_matches_sequential_order() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn vec_map_by_value_matches_sequential_order() {
        let items: Vec<String> = (0..300).map(|i| i.to_string()).collect();
        let expected = items.clone();
        let out: Vec<String> = items.into_par_iter().map(|s| s).collect();
        assert_eq!(out, expected);
        let empty: Vec<String> = Vec::new();
        let out: Vec<usize> = empty.into_par_iter().map(|s| s.len()).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_index_visible_inside_parallel_ops_only() {
        assert_eq!(current_thread_index(), None);
        let items: Vec<usize> = (0..64).collect();
        let indices: Vec<Option<usize>> =
            items.par_iter().map(|_| current_thread_index()).collect();
        // Multi-worker runs mark every element; single-threaded fallbacks
        // run inline and legitimately report None.
        if current_num_threads() > 1 {
            assert!(indices.iter().all(|i| i.is_some()));
        }
        assert_eq!(current_thread_index(), None);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&b| b).collect();
        assert!(out.is_empty());
        let one = [7usize];
        let out: Vec<usize> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
