//! Umbrella crate for the MetaSeg reproduction workspace.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories have a package to attach to. It simply re-exports the
//! workspace crates under stable names:
//!
//! * [`metaseg`] — the paper's contribution (meta classification/regression,
//!   time-dynamic MetaSeg, false-negative analysis),
//! * [`metaseg_sim`] — the synthetic street-scene + network simulator,
//! * [`metaseg_learners`] — the from-scratch ML substrate,
//! * [`metaseg_serve`] — the multi-camera TCP inference service,
//! * [`metaseg_eval`], [`metaseg_tracking`], [`metaseg_rules`],
//!   [`metaseg_data`], [`metaseg_imgproc`] — supporting substrates.
//!
//! ```
//! use metaseg_suite::metaseg::MetaSegConfig;
//! let config = MetaSegConfig::default();
//! assert!(config.runs >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Compiles and runs every Rust code block of the repository README as a
/// doc-test (`cargo test` executes it), so the quickstart snippet shown to
/// new users can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub use metaseg;
pub use metaseg_data;
pub use metaseg_eval;
pub use metaseg_imgproc;
pub use metaseg_learners;
pub use metaseg_rules;
pub use metaseg_serve;
pub use metaseg_sim;
pub use metaseg_tracking;
